//! The `guardrail-server` daemon and its one-shot client.
//!
//! ```text
//! guardrail-server --listen <addr> [--tenant-inflight N] [--global-inflight N]
//!                  [--default-deadline-ms MS] [--max-deadline-ms MS]
//!                  [--max-frame-bytes N] [--read-timeout-ms MS]
//!                  [--idle-timeout-ms MS] [--retry-after-ms MS]
//!                  [--store-root DIR] [--debug-ops] [--trace-out trace.json]
//! guardrail-server send <addr> <request-json>...
//! ```
//!
//! The daemon prints `listening on <addr>` to stderr once bound (scripts
//! wait for that line), serves until a `shutdown` request arrives, drains,
//! and — when `--trace-out` was given — writes a Chrome-trace JSON of the
//! run's `serve_*` spans and `server.requests.*` counters.
//!
//! `send` opens one connection, sends each argument as a request line, and
//! prints each response line to stdout — the scripted-session client the
//! CI smoke job drives.

use guardrail_obs as obs;
use guardrail_server::chaos::Client;
use guardrail_server::{Server, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
guardrail-server — fault-tolerant multi-tenant serving daemon

USAGE:
  guardrail-server --listen <addr> [--tenant-inflight N] [--global-inflight N]
                   [--default-deadline-ms MS] [--max-deadline-ms MS]
                   [--max-frame-bytes N] [--read-timeout-ms MS]
                   [--idle-timeout-ms MS] [--retry-after-ms MS]
                   [--store-root DIR] [--debug-ops] [--trace-out trace.json]
  guardrail-server send <addr> <request-json>...

Protocol: newline-delimited JSON over TCP; one request object per line, one
response object per line. Ops: fit, detect, rectify, vet, status, shutdown,
plus append and detect_batch against persistent stores when --store-root
is given (stores live at DIR/<tenant>/<table>/, segment + WAL).
See DESIGN.md §4 for the grammar and the shed/degrade/clean taxonomy.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("send") => cmd_send(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(_) => cmd_daemon(&args),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn parse_ms(value: &Option<String>, flag: &str) -> Result<Option<Duration>, String> {
    value
        .as_ref()
        .map(|v| v.parse::<u64>().map(Duration::from_millis).map_err(|_| format!("bad {flag}")))
        .transpose()
}

fn cmd_daemon(args: &[String]) -> Result<ExitCode, String> {
    let flag_names = [
        "--listen",
        "--tenant-inflight",
        "--global-inflight",
        "--default-deadline-ms",
        "--max-deadline-ms",
        "--max-frame-bytes",
        "--read-timeout-ms",
        "--idle-timeout-ms",
        "--retry-after-ms",
        "--trace-out",
        "--store-root",
    ];
    let (pos, flags, switches) = parse_flags(args, &flag_names, &["--debug-ops"])?;
    if !pos.is_empty() {
        return Err(format!("unexpected argument {:?}\n{USAGE}", pos[0]));
    }
    let mut config = ServerConfig {
        addr: flags[0].clone().ok_or("daemon mode needs --listen <addr>")?,
        debug_ops: switches[0],
        ..ServerConfig::default()
    };
    if let Some(v) = &flags[1] {
        config.tenant_inflight = v.parse().map_err(|_| "bad --tenant-inflight")?;
    }
    if let Some(v) = &flags[2] {
        config.global_inflight = v.parse().map_err(|_| "bad --global-inflight")?;
    }
    if let Some(d) = parse_ms(&flags[3], "--default-deadline-ms")? {
        config.default_deadline = d;
    }
    if let Some(d) = parse_ms(&flags[4], "--max-deadline-ms")? {
        config.max_deadline = d;
    }
    if let Some(v) = &flags[5] {
        config.max_frame_bytes = v.parse().map_err(|_| "bad --max-frame-bytes")?;
    }
    if let Some(d) = parse_ms(&flags[6], "--read-timeout-ms")? {
        config.read_timeout = d;
    }
    if let Some(d) = parse_ms(&flags[7], "--idle-timeout-ms")? {
        config.idle_timeout = d;
    }
    if let Some(v) = &flags[8] {
        config.retry_after_ms = v.parse().map_err(|_| "bad --retry-after-ms")?;
    }
    let trace_out = flags[9].clone();
    if let Some(v) = &flags[10] {
        config.store_root = Some(std::path::PathBuf::from(v));
    }

    let ring = trace_out.as_ref().map(|_| {
        let ring = Arc::new(obs::RingRecorder::with_capacity(1 << 20));
        obs::install(ring.clone());
        ring
    });
    let handle = Server::spawn(config).map_err(|e| format!("bind failed: {e}"))?;
    eprintln!("listening on {}", handle.addr());

    // Serve until a `shutdown` request flips the drain flag.
    while !handle.ctx().lifecycle.is_draining() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("draining…");
    handle.shutdown();
    if let (Some(path), Some(ring)) = (&trace_out, &ring) {
        obs::uninstall();
        let events = ring.take();
        let trace = obs::chrome_trace(&events);
        std::fs::write(path, trace).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("trace ({} events) written to {path}", events.len());
    }
    eprintln!("drained; bye");
    Ok(ExitCode::SUCCESS)
}

fn cmd_send(args: &[String]) -> Result<ExitCode, String> {
    let [addr, requests @ ..] = args else {
        return Err(format!("send needs <addr> and at least one request\n{USAGE}"));
    };
    if requests.is_empty() {
        return Err(format!("send needs at least one request line\n{USAGE}"));
    }
    let addr = addr.parse().map_err(|e| format!("bad address {addr:?}: {e}"))?;
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    for request in requests {
        let response = client.call(request).map_err(|e| format!("round trip: {e}"))?;
        println!("{response}");
    }
    Ok(ExitCode::SUCCESS)
}

/// (positional args, `--flag value` values, bare `--switch` states).
type ParsedArgs = (Vec<String>, Vec<Option<String>>, Vec<bool>);

/// Pulls `--flag value` pairs and bare `--switch` toggles out of an
/// argument list (same shape as the main `guardrail` CLI's parser).
fn parse_flags(args: &[String], flags: &[&str], switches: &[&str]) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut values: Vec<Option<String>> = vec![None; flags.len()];
    let mut toggles = vec![false; switches.len()];
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(idx) = flags.iter().position(|f| f == arg) {
            let v = iter.next().ok_or_else(|| format!("{arg} needs a value"))?;
            values[idx] = Some(v.clone());
        } else if let Some(idx) = switches.iter().position(|s| s == arg) {
            toggles[idx] = true;
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag {arg:?}"));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, values, toggles))
}
