//! Request execution: admission → budget → verb, with typed errors.
//!
//! Every admitted verb runs under a [`Budget`] whose deadline is the
//! client's `deadline_ms` clamped to the server maximum (or the server
//! default when absent). A deadline that is already exhausted — zero, or
//! spent while shed-retrying — produces `BUDGET_EXHAUSTED` *before* any
//! work runs; a deadline that expires mid-verb degrades the response
//! (`"status": "degraded"` plus a serialized [`DegradationReport`]) rather
//! than abandoning it.

use crate::admission::{Admission, AdmissionDecision, Permit};
use crate::proto::{self, ErrorKind, JVal, Op, Request, WireError};
use crate::registry::EngineRegistry;
use crate::server::{Lifecycle, ServerConfig};
use crate::stores::{self, StoreRegistry};
use guardrail_core::{ErrorScheme, Guardrail, GuardrailConfig};
use guardrail_governor::{Budget, DegradationReport, StageStatus};
use guardrail_obs as obs;
use guardrail_table::{Table, TableSource};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome class of one request, for the `server.requests.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed with an exact result.
    Ok,
    /// Completed with a partial result under budget pressure.
    Degraded,
    /// Rejected by admission control (`RETRY_AFTER`).
    Shed,
    /// Typed error (bad request, not found, failed fit, panic, …).
    Error,
}

/// Obs counter names, one per [`Outcome`]. These go through
/// [`obs::count_always`], so the `status` verb and an armed `--trace-out`
/// recorder read the *same* cells.
pub const COUNTER_NAMES: [(&str, Outcome); 4] = [
    ("server.requests.ok", Outcome::Ok),
    ("server.requests.degraded", Outcome::Degraded),
    ("server.requests.shed", Outcome::Shed),
    ("server.requests.error", Outcome::Error),
];

/// Per-server view over the process-global obs counters: values are
/// reported relative to a baseline taken at server start, so several
/// servers in one process (tests) each see their own traffic.
#[derive(Debug, Clone)]
pub struct Counters {
    base: [u64; 4],
}

impl Counters {
    /// Snapshot the baseline at server start.
    pub fn new() -> Self {
        Self { base: COUNTER_NAMES.map(|(name, _)| obs::counter_value(name)) }
    }

    /// Counts one request outcome (always-on; traced when armed).
    pub fn bump(&self, outcome: Outcome) {
        let (name, _) = COUNTER_NAMES[outcome as usize];
        obs::count_always(name, 1);
    }

    /// `(ok, degraded, shed, error)` totals since server start.
    pub fn totals(&self) -> [u64; 4] {
        let mut out = [0; 4];
        for (i, (name, _)) in COUNTER_NAMES.iter().enumerate() {
            out[i] = obs::counter_value(name).saturating_sub(self.base[i]);
        }
        out
    }
}

impl Default for Counters {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything a handler can touch. Shared by all connections.
#[derive(Debug)]
pub struct Ctx {
    /// Immutable server configuration.
    pub config: ServerConfig,
    /// The hot-swappable engine registry.
    pub registry: Arc<EngineRegistry>,
    /// Persistent `(tenant, table)` stores for `append` / `detect_batch`;
    /// `None` when the server runs without `--store-root`.
    pub stores: Option<Arc<StoreRegistry>>,
    /// The admission controller.
    pub admission: Arc<Admission>,
    /// Drain signal.
    pub lifecycle: Arc<Lifecycle>,
    /// Server start, for `status.uptime_ms`.
    pub started: Instant,
    /// Per-server counter view.
    pub counters: Counters,
}

type HandlerResult = Result<(Vec<(&'static str, JVal)>, DegradationReport), WireError>;

/// Executes one parsed request end to end: admission, budget, verb.
/// Returns the response line (no newline) and the outcome class. Never
/// panics on *input* — a panic can only come from the verb body, and the
/// connection loop isolates that with `catch_unwind`.
pub fn handle(ctx: &Ctx, req: &Request) -> (String, Outcome) {
    let mut span = obs::span(req.op.span_name());
    let result = admit_and_dispatch(ctx, req);
    let (line, outcome) = match result {
        Ok((fields, degradation)) => {
            let outcome = if degradation.is_complete() { Outcome::Ok } else { Outcome::Degraded };
            (proto::render_ok(req.op, fields, &degradation), outcome)
        }
        Err(err) => {
            let outcome = match err.kind {
                ErrorKind::RetryAfter => Outcome::Shed,
                _ => Outcome::Error,
            };
            (proto::render_err(Some(req.op), &err), outcome)
        }
    };
    span.arg("ok", matches!(outcome, Outcome::Ok | Outcome::Degraded) as u64);
    span.arg("shed", matches!(outcome, Outcome::Shed) as u64);
    ctx.counters.bump(outcome);
    (line, outcome)
}

fn admit_and_dispatch(ctx: &Ctx, req: &Request) -> HandlerResult {
    if req.op.is_debug() && !ctx.config.debug_ops {
        return Err(WireError::new(
            ErrorKind::BadRequest,
            format!("op {:?} requires --debug-ops", req.op.wire_name()),
        ));
    }
    // `status` and `shutdown` bypass admission and drain refusal: they are
    // cheap, and an operator must be able to observe/stop an overloaded or
    // draining server.
    let _permit: Option<Permit> = match req.op {
        Op::Status | Op::Shutdown => None,
        _ => {
            if ctx.lifecycle.is_draining() {
                return Err(WireError::new(
                    ErrorKind::ShuttingDown,
                    "server is draining; no new work accepted",
                ));
            }
            match ctx.admission.try_admit(&req.tenant) {
                AdmissionDecision::Admitted(permit) => Some(permit),
                AdmissionDecision::Shed { bound } => {
                    return Err(WireError::retry_after(
                        ctx.config.retry_after_ms,
                        format!("{bound} in-flight quota saturated for tenant {:?}", req.tenant),
                    ));
                }
            }
        }
    };

    let budget = request_budget(&ctx.config, req);
    // A zero / already-expired deadline is refused before any work runs.
    if !matches!(req.op, Op::Status | Op::Shutdown) {
        budget.check().map_err(|e| {
            WireError::new(ErrorKind::BudgetExhausted, format!("deadline refused: {e}"))
        })?;
    }

    match req.op {
        Op::Fit => fit(ctx, req, &budget),
        Op::Detect => detect(ctx, req, &budget),
        Op::Rectify => rectify(ctx, req, &budget),
        Op::Vet => vet(ctx, req, &budget),
        Op::Append => append(ctx, req, &budget),
        Op::DetectBatch => detect_batch(ctx, req, &budget),
        Op::Status => status(ctx),
        Op::Shutdown => shutdown(ctx),
        Op::Sleep => sleep(req, &budget),
        Op::Boom => panic!("boom: deliberate handler panic (debug op)"),
    }
}

/// The request's budget: client deadline clamped to the server max, or
/// the server default. `Budget::with_deadline` saturates internally, so
/// even absurd client values can't disable enforcement.
fn request_budget(config: &ServerConfig, req: &Request) -> Budget {
    let deadline = match req.deadline_ms {
        Some(ms) => Duration::from_millis(ms).min(config.max_deadline),
        None => config.default_deadline,
    };
    Budget::with_deadline(deadline)
}

fn payload_table(req: &Request) -> Result<Table, WireError> {
    let csv = req.csv.as_deref().ok_or_else(|| {
        WireError::new(
            ErrorKind::BadRequest,
            format!("op {:?} requires \"csv\"", req.op.wire_name()),
        )
    })?;
    Table::from_csv_str(csv)
        .map_err(|e| WireError::new(ErrorKind::BadRequest, format!("csv payload: {e}")))
}

fn engine_for(ctx: &Ctx, req: &Request) -> Result<Arc<crate::registry::EngineVersion>, WireError> {
    ctx.registry.current(&req.tenant, &req.table).ok_or_else(|| {
        WireError::new(
            ErrorKind::NotFound,
            format!("no engine published for tenant {:?} table {:?}", req.tenant, req.table),
        )
    })
}

fn fit(ctx: &Ctx, req: &Request, budget: &Budget) -> HandlerResult {
    let table = payload_table(req)?;
    let mut config = GuardrailConfig::default();
    if let Some(eps) = req.epsilon {
        config = config.with_epsilon(eps);
    }
    let fitted = Guardrail::builder().config(config).budget(budget.clone()).fit(&table);
    let guard = match fitted {
        Ok(guard) => guard,
        Err(e) => {
            let retained = ctx.registry.record_failed_fit(&req.tenant, &req.table);
            return Err(WireError::new(
                ErrorKind::FitFailed,
                format!("fit failed ({e}); version {retained} retained"),
            ));
        }
    };
    // A re-synthesis that degrades to *nothing* must not replace a working
    // program: keep (roll back to) the current version.
    let prior_nonempty = ctx
        .registry
        .current(&req.tenant, &req.table)
        .is_some_and(|v| !v.guard.program().is_empty());
    if guard.program().is_empty() && prior_nonempty {
        let retained = ctx.registry.record_failed_fit(&req.tenant, &req.table);
        return Err(WireError::new(
            ErrorKind::FitFailed,
            format!("fit produced an empty program; rolled back to version {retained}"),
        ));
    }
    let degradation = guard.degradation().clone();
    let statements = guard.program().statements.len();
    let branches = guard.program().num_branches();
    let coverage = guard.coverage();
    let constraints = guard.program().to_string();
    let rows = table.num_rows();
    let version = ctx.registry.publish(&req.tenant, &req.table, guard, rows);
    Ok((
        vec![
            ("version", JVal::U64(version)),
            ("trained_rows", JVal::U64(rows as u64)),
            ("statements", JVal::U64(statements as u64)),
            ("branches", JVal::U64(branches as u64)),
            ("coverage", JVal::F64(coverage)),
            ("constraints", JVal::Str(constraints)),
        ],
        degradation,
    ))
}

fn detect(ctx: &Ctx, req: &Request, budget: &Budget) -> HandlerResult {
    let engine = engine_for(ctx, req)?;
    let table = payload_table(req)?;
    let report = engine.guard.detect(&table);
    let mut degradation = DegradationReport::complete();
    if let Err(e) = budget.check() {
        // The scan ran past its deadline: the result is complete, but the
        // client asked for bounded latency — surface the overrun.
        degradation.record(StageStatus::degraded("serve_detect", e));
    }
    Ok((
        vec![
            ("version", JVal::U64(engine.version)),
            ("rows", JVal::U64(report.rows_checked as u64)),
            ("dirty_rows", JVal::U64(report.dirty_rows().len() as u64)),
            ("violations", proto::violations_jval(&report.violations)),
        ],
        degradation,
    ))
}

fn rectify(ctx: &Ctx, req: &Request, budget: &Budget) -> HandlerResult {
    let scheme = req.scheme.unwrap_or(ErrorScheme::Rectify);
    if !matches!(scheme, ErrorScheme::Coerce | ErrorScheme::Rectify) {
        return Err(WireError::new(
            ErrorKind::BadRequest,
            "rectify scheme must be \"coerce\" or \"rectify\"",
        ));
    }
    let engine = engine_for(ctx, req)?;
    let table = payload_table(req)?;
    let (fixed, report) = engine.guard.apply(&table, scheme);
    let mut degradation = DegradationReport::complete();
    if let Err(e) = budget.check() {
        degradation.record(StageStatus::degraded("serve_rectify", e));
    }
    Ok((
        vec![
            ("version", JVal::U64(engine.version)),
            ("rows", JVal::U64(table.num_rows() as u64)),
            ("cells_changed", JVal::U64(report.cells_changed as u64)),
            ("violations", proto::violations_jval(&report.violations)),
            ("csv", JVal::Str(fixed.to_csv_string())),
        ],
        degradation,
    ))
}

fn vet(ctx: &Ctx, req: &Request, budget: &Budget) -> HandlerResult {
    let scheme = req.scheme.unwrap_or(ErrorScheme::Rectify);
    let engine = engine_for(ctx, req)?;
    let table = payload_table(req)?;
    let rows: Vec<usize> = (0..table.num_rows()).collect();
    let vetted = engine.guard.vet_rows(&table, &rows, scheme).ok_or_else(|| {
        WireError::new(
            ErrorKind::BadRequest,
            "published program does not bind to the payload schema",
        )
    })?;
    let mut degradation = DegradationReport::complete();
    if let Err(e) = budget.check() {
        degradation.record(StageStatus::degraded("serve_vet", e));
    }
    Ok((
        vec![
            ("version", JVal::U64(engine.version)),
            ("rows", JVal::U64(rows.len() as u64)),
            ("violations", proto::violations_jval(&vetted.violations)),
            ("legacy_statements", JVal::U64(vetted.legacy_statements as u64)),
            ("csv", JVal::Str(vetted.table.to_csv_string())),
        ],
        degradation,
    ))
}

fn store_registry<'a>(ctx: &'a Ctx, req: &Request) -> Result<&'a Arc<StoreRegistry>, WireError> {
    ctx.stores.as_ref().ok_or_else(|| {
        WireError::new(
            ErrorKind::BadRequest,
            format!("op {:?} requires a server started with --store-root", req.op.wire_name()),
        )
    })
}

/// Durably appends the CSV payload's rows to the `(tenant, table)` store
/// as one WAL batch, creating the store (payload = base segment) on first
/// use. The fsync'd WAL write happens before rows become visible, so a
/// batch acknowledged here survives `kill -9`.
fn append(ctx: &Ctx, req: &Request, budget: &Budget) -> HandlerResult {
    let stores = store_registry(ctx, req)?;
    let payload = payload_table(req)?;
    let storage = |e| {
        WireError::new(ErrorKind::Internal, format!("store {:?}/{:?}: {e}", req.tenant, req.table))
    };
    let (slot, created) =
        stores.open_or_create(&req.tenant, &req.table, &payload).map_err(storage)?;
    let mut slot = stores::lock_slot(&slot);
    let (batch_id, rows_appended) = if created {
        (0, payload.num_rows())
    } else {
        let batch = slot.store.append_table(&payload).map_err(storage)?;
        (batch.id, batch.len())
    };
    let mut degradation = DegradationReport::complete();
    if let Err(e) = budget.check() {
        degradation.record(StageStatus::degraded("serve_append", e));
    }
    Ok((
        vec![
            ("created", JVal::Bool(created)),
            ("batch_id", JVal::U64(batch_id)),
            ("rows_appended", JVal::U64(rows_appended as u64)),
            ("rows_total", JVal::U64(slot.store.num_rows() as u64)),
            ("wal_batches", JVal::U64(slot.store.wal_batches().len() as u64)),
        ],
        degradation,
    ))
}

/// Probes only the rows appended since the previous `detect_batch` against
/// the published engine (determinant-index incremental scan), returning
/// the new violations and honest probed-row work units. The first call per
/// (store, engine version) pays one full scan to seed the detector.
fn detect_batch(ctx: &Ctx, req: &Request, budget: &Budget) -> HandlerResult {
    let stores = store_registry(ctx, req)?;
    let engine = engine_for(ctx, req)?;
    let slot = stores
        .open(&req.tenant, &req.table)
        .map_err(|e| {
            WireError::new(
                ErrorKind::Internal,
                format!("store {:?}/{:?}: {e}", req.tenant, req.table),
            )
        })?
        .ok_or_else(|| {
            WireError::new(
                ErrorKind::NotFound,
                format!("no store for tenant {:?} table {:?}; append first", req.tenant, req.table),
            )
        })?;
    let mut slot = stores::lock_slot(&slot);
    let rows_total = slot.store.num_rows();
    let Some(outcome) = slot.detect_appended(&engine.guard, engine.version, budget) else {
        // An empty program detects nothing, incrementally or otherwise.
        return Ok((
            vec![
                ("version", JVal::U64(engine.version)),
                ("rows_total", JVal::U64(rows_total as u64)),
                ("rows_scanned", JVal::U64(0)),
                ("rows_probed", JVal::U64(0)),
                ("recompiled", JVal::Bool(false)),
                ("violations", proto::violations_jval(&[])),
            ],
            DegradationReport::complete(),
        ));
    };
    let (seen_before, scan) = outcome.map_err(|e| {
        WireError::new(ErrorKind::BudgetExhausted, format!("incremental detect refused: {e}"))
    })?;
    let det = slot.detector().expect("detector exists after a successful pass");
    let new_violations =
        if scan.recompiled { det.violations() } else { det.violations_in(seen_before..rows_total) };
    let fields = vec![
        ("version", JVal::U64(engine.version)),
        ("rows_total", JVal::U64(rows_total as u64)),
        ("rows_scanned", JVal::U64(scan.rows_scanned as u64)),
        ("rows_probed", JVal::U64(scan.rows_probed)),
        ("recompiled", JVal::Bool(scan.recompiled)),
        ("violations", proto::violations_jval(new_violations)),
    ];
    let mut degradation = DegradationReport::complete();
    if let Err(e) = budget.check() {
        degradation.record(StageStatus::degraded("serve_detect_batch", e));
    }
    Ok((fields, degradation))
}

fn status(ctx: &Ctx) -> HandlerResult {
    let [ok, degraded, shed, error] = ctx.counters.totals();
    let engines = JVal::Arr(
        ctx.registry
            .snapshot()
            .into_iter()
            .map(|e| {
                JVal::Obj(vec![
                    ("tenant".to_string(), JVal::Str(e.tenant)),
                    ("table".to_string(), JVal::Str(e.table)),
                    ("version".to_string(), JVal::U64(e.version)),
                    ("statements".to_string(), JVal::U64(e.statements as u64)),
                    ("failed_fits".to_string(), JVal::U64(e.failed_fits)),
                ])
            })
            .collect(),
    );
    let tenants = JVal::Arr(
        ctx.admission
            .snapshot()
            .into_iter()
            .map(|t| {
                JVal::Obj(vec![
                    ("tenant".to_string(), JVal::Str(t.tenant)),
                    ("in_flight".to_string(), JVal::U64(t.in_flight as u64)),
                    ("high_water".to_string(), JVal::U64(t.high_water as u64)),
                    ("admitted".to_string(), JVal::U64(t.admitted)),
                    ("shed".to_string(), JVal::U64(t.shed)),
                ])
            })
            .collect(),
    );
    let counters = JVal::Obj(vec![
        ("ok".to_string(), JVal::U64(ok)),
        ("degraded".to_string(), JVal::U64(degraded)),
        ("shed".to_string(), JVal::U64(shed)),
        ("error".to_string(), JVal::U64(error)),
    ]);
    // Persistent stores are listed only when the daemon owns a store root;
    // the field's absence tells clients `append`/`detect_batch` are off.
    let stores = ctx.stores.as_ref().map(|registry| {
        JVal::Arr(
            registry
                .snapshot()
                .into_iter()
                .map(|(tenant, table, rows, wal_batches)| {
                    JVal::Obj(vec![
                        ("tenant".to_string(), JVal::Str(tenant)),
                        ("table".to_string(), JVal::Str(table)),
                        ("rows".to_string(), JVal::U64(rows as u64)),
                        ("wal_batches".to_string(), JVal::U64(wal_batches as u64)),
                    ])
                })
                .collect(),
        )
    });
    // The same numbers as a rendered obs stage snapshot, so scripts that
    // already parse `--report` trees can scrape `status` identically.
    let stage = obs::StageReport::new("server")
        .wall_ns(ctx.started.elapsed().as_nanos() as u64)
        .metric("requests_ok", ok)
        .metric("requests_degraded", degraded)
        .metric("requests_shed", shed)
        .metric("requests_error", error)
        .metric("in_flight", ctx.admission.global_in_flight())
        .metric("in_flight_high_water", ctx.admission.global_high_water());
    let report = obs::PipelineReport::new().stage(stage).to_string();
    let mut fields = vec![
        ("uptime_ms", JVal::U64(ctx.started.elapsed().as_millis() as u64)),
        ("draining", JVal::Bool(ctx.lifecycle.is_draining())),
        ("in_flight", JVal::U64(ctx.admission.global_in_flight() as u64)),
        ("in_flight_high_water", JVal::U64(ctx.admission.global_high_water() as u64)),
        ("counters", counters),
        ("tenants", tenants),
        ("engines", engines),
    ];
    if let Some(stores) = stores {
        fields.push(("stores", stores));
    }
    fields.push(("report", JVal::Str(report)));
    Ok((fields, DegradationReport::complete()))
}

fn shutdown(ctx: &Ctx) -> HandlerResult {
    ctx.lifecycle.request_drain();
    Ok((vec![("draining", JVal::Bool(true))], DegradationReport::complete()))
}

/// Debug verb: hold the admission slot for `sleep_ms`, charging the
/// budget in small slices so the deadline can cut it short — the chaos
/// suite's stand-in for a long-running verb with a bounded-latency
/// contract.
fn sleep(req: &Request, budget: &Budget) -> HandlerResult {
    let target = Duration::from_millis(req.sleep_ms.unwrap_or(0));
    let slice = Duration::from_millis(5);
    let start = Instant::now();
    let mut degradation = DegradationReport::complete();
    while start.elapsed() < target {
        if let Err(e) = budget.check() {
            degradation.record(StageStatus::degraded("serve_sleep", e));
            break;
        }
        std::thread::sleep(slice.min(target - start.elapsed()));
    }
    Ok((vec![("slept_ms", JVal::U64(start.elapsed().as_millis() as u64))], degradation))
}
