//! Admission control: bounded in-flight quotas with early load shedding.
//!
//! The state machine per request is deliberately tiny:
//!
//! ```text
//!           ┌─────────┐  quota free   ┌──────────┐ permit drop ┌──────┐
//! parsed ──▶│ ADMIT?  ├──────────────▶│ IN-FLIGHT├────────────▶│ DONE │
//!           └────┬────┘               └──────────┘             └──────┘
//!                │ tenant or global quota saturated
//!                ▼
//!          SHED (typed RETRY_AFTER, no queue)
//! ```
//!
//! There is **no queue**: a request that cannot run *now* is rejected
//! *now* with a `RETRY_AFTER` hint. Queues under overload only convert
//! memory into latency until both run out; shedding keeps the admitted
//! set small enough to meet its deadlines (the `tests/server_robustness.rs`
//! bounded-latency property).
//!
//! Permits are RAII: dropping a [`Permit`] — normally or during a panic
//! unwind — releases the slot, so a poisoned request can never leak
//! capacity (the never-leak-a-permit property).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Per-tenant accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant key.
    pub tenant: String,
    /// Requests currently holding a permit.
    pub in_flight: usize,
    /// Highest simultaneous in-flight count ever observed.
    pub high_water: usize,
    /// Total requests admitted.
    pub admitted: u64,
    /// Total requests shed (tenant or global quota).
    pub shed: u64,
}

#[derive(Debug, Default)]
struct TenantState {
    in_flight: usize,
    high_water: usize,
    admitted: u64,
    shed: u64,
}

#[derive(Debug, Default)]
struct State {
    global_in_flight: usize,
    global_high_water: usize,
    tenants: HashMap<String, TenantState>,
}

/// The admission controller: per-tenant and global in-flight bounds.
#[derive(Debug)]
pub struct Admission {
    tenant_quota: usize,
    global_quota: usize,
    state: Mutex<State>,
}

/// Outcome of an admission attempt.
#[derive(Debug)]
pub enum AdmissionDecision {
    /// Admitted; the permit must be held for the request's duration.
    Admitted(Permit),
    /// Shed; the string names the saturated bound (`"tenant"`/`"global"`).
    Shed {
        /// Which quota tripped.
        bound: &'static str,
    },
}

/// RAII in-flight slot. Dropping releases the tenant and global counts —
/// including via panic unwind.
#[derive(Debug)]
pub struct Permit {
    admission: Arc<Admission>,
    tenant: String,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut s = self.admission.state.lock().unwrap_or_else(|e| e.into_inner());
        s.global_in_flight = s.global_in_flight.saturating_sub(1);
        if let Some(t) = s.tenants.get_mut(&self.tenant) {
            t.in_flight = t.in_flight.saturating_sub(1);
        }
    }
}

impl Admission {
    /// A controller with the given per-tenant and global in-flight quotas
    /// (both must be ≥ 1).
    pub fn new(tenant_quota: usize, global_quota: usize) -> Arc<Self> {
        Arc::new(Self {
            tenant_quota: tenant_quota.max(1),
            global_quota: global_quota.max(1),
            state: Mutex::new(State::default()),
        })
    }

    /// Tries to admit one request for `tenant`. O(1) under one short lock;
    /// never blocks on quota (that would be the queue this module refuses
    /// to have).
    pub fn try_admit(self: &Arc<Self>, tenant: &str) -> AdmissionDecision {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.global_in_flight >= self.global_quota {
            s.tenants.entry(tenant.to_string()).or_default().shed += 1;
            return AdmissionDecision::Shed { bound: "global" };
        }
        let t = s.tenants.entry(tenant.to_string()).or_default();
        if t.in_flight >= self.tenant_quota {
            t.shed += 1;
            return AdmissionDecision::Shed { bound: "tenant" };
        }
        t.in_flight += 1;
        t.high_water = t.high_water.max(t.in_flight);
        t.admitted += 1;
        s.global_in_flight += 1;
        s.global_high_water = s.global_high_water.max(s.global_in_flight);
        AdmissionDecision::Admitted(Permit {
            admission: Arc::clone(self),
            tenant: tenant.to_string(),
        })
    }

    /// Requests currently in flight across all tenants.
    pub fn global_in_flight(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).global_in_flight
    }

    /// Highest simultaneous global in-flight count ever observed.
    pub fn global_high_water(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).global_high_water
    }

    /// Per-tenant accounting, sorted by tenant for stable output.
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<TenantSnapshot> = s
            .tenants
            .iter()
            .map(|(tenant, t)| TenantSnapshot {
                tenant: tenant.clone(),
                in_flight: t.in_flight,
                high_water: t.high_water,
                admitted: t.admitted,
                shed: t.shed,
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_quota_bounds_in_flight_and_recovers_on_drop() {
        let a = Admission::new(2, 100);
        let p1 = match a.try_admit("t") {
            AdmissionDecision::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        let _p2 = match a.try_admit("t") {
            AdmissionDecision::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        assert!(matches!(a.try_admit("t"), AdmissionDecision::Shed { bound: "tenant" }));
        // A different tenant still gets in.
        assert!(matches!(a.try_admit("u"), AdmissionDecision::Admitted(_)));
        drop(p1);
        assert!(matches!(a.try_admit("t"), AdmissionDecision::Admitted(_)));
        let snap = a.snapshot();
        let t = snap.iter().find(|s| s.tenant == "t").unwrap();
        assert_eq!((t.high_water, t.admitted, t.shed), (2, 3, 1));
    }

    #[test]
    fn global_quota_bounds_across_tenants() {
        let a = Admission::new(10, 3);
        let permits: Vec<Permit> = (0..3)
            .map(|i| match a.try_admit(&format!("t{i}")) {
                AdmissionDecision::Admitted(p) => p,
                other => panic!("{other:?}"),
            })
            .collect();
        assert!(matches!(a.try_admit("t9"), AdmissionDecision::Shed { bound: "global" }));
        assert_eq!(a.global_in_flight(), 3);
        assert_eq!(a.global_high_water(), 3);
        drop(permits);
        assert_eq!(a.global_in_flight(), 0);
        assert!(matches!(a.try_admit("t9"), AdmissionDecision::Admitted(_)));
    }

    #[test]
    fn permit_released_by_panic_unwind() {
        let a = Admission::new(1, 1);
        let a2 = Arc::clone(&a);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _permit = match a2.try_admit("t") {
                AdmissionDecision::Admitted(p) => p,
                other => panic!("unexpected {other:?}"),
            };
            panic!("poisoned request");
        }));
        assert!(result.is_err());
        // The unwind dropped the permit: capacity is back.
        assert_eq!(a.global_in_flight(), 0);
        assert!(matches!(a.try_admit("t"), AdmissionDecision::Admitted(_)));
    }

    #[test]
    fn concurrent_admission_never_exceeds_quota() {
        let a = Admission::new(4, 4);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let a = Arc::clone(&a);
                scope.spawn(move || {
                    for _ in 0..200 {
                        if let AdmissionDecision::Admitted(p) = a.try_admit("t") {
                            assert!(a.global_in_flight() <= 4);
                            drop(p);
                        }
                    }
                });
            }
        });
        assert_eq!(a.global_in_flight(), 0);
        assert!(a.global_high_water() <= 4);
    }
}
