//! The engine registry: versioned, hot-swappable fitted guardrails keyed
//! by `(tenant, table)`.
//!
//! Serving reads take an `Arc` snapshot of the current version under a
//! short read lock and then run entirely lock-free: a concurrent `fit`
//! publishing version *n+1* never stalls or torments requests already
//! executing against version *n* — they finish on the snapshot they
//! started with (atomic hot-swap).
//!
//! Publication is all-or-nothing. A fit that errors, or that degrades all
//! the way to an *empty* program while a non-empty predecessor exists,
//! does not publish: the previous version simply stays current (rollback
//! on a failed fit), and the failure is counted so `status` can surface
//! flapping re-synthesis. The immediately preceding version is retained
//! per key, so operators can also inspect what a hot-swap replaced.

use guardrail_core::Guardrail;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// One published engine version.
#[derive(Debug)]
pub struct EngineVersion {
    /// Monotonic per-(tenant, table) version, starting at 1.
    pub version: u64,
    /// The fitted guardrail (program + diagnostics).
    pub guard: Guardrail,
    /// Rows in the training payload.
    pub trained_rows: usize,
    /// The program in DSL text form (what `fit` returns to the client).
    pub constraints: String,
}

#[derive(Debug, Default)]
struct Slot {
    current: Option<Arc<EngineVersion>>,
    previous: Option<Arc<EngineVersion>>,
    next_version: u64,
    failed_fits: u64,
}

/// Row in a [`EngineRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Tenant key.
    pub tenant: String,
    /// Table key.
    pub table: String,
    /// Current published version (0 = none yet).
    pub version: u64,
    /// Statements in the current program.
    pub statements: usize,
    /// Fits that failed (and were rolled back) since the slot appeared.
    pub failed_fits: u64,
}

/// The registry. Cheap to share (`Arc`); all methods take `&self`.
#[derive(Debug, Default)]
pub struct EngineRegistry {
    slots: RwLock<HashMap<(String, String), Slot>>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of the current version for `(tenant, table)`, if any.
    /// Lock held only for the map lookup; the returned `Arc` stays valid
    /// across any number of concurrent hot-swaps.
    pub fn current(&self, tenant: &str, table: &str) -> Option<Arc<EngineVersion>> {
        let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
        slots.get(&(tenant.to_string(), table.to_string()))?.current.clone()
    }

    /// Atomically publishes a freshly fitted guardrail as the new current
    /// version, demoting the old current to `previous`. Returns the new
    /// version number.
    pub fn publish(&self, tenant: &str, table: &str, guard: Guardrail, trained_rows: usize) -> u64 {
        let constraints = guard.program().to_string();
        let mut slots = self.slots.write().unwrap_or_else(|e| e.into_inner());
        let slot = slots.entry((tenant.to_string(), table.to_string())).or_default();
        slot.next_version += 1;
        let version = slot.next_version;
        let fresh = Arc::new(EngineVersion { version, guard, trained_rows, constraints });
        slot.previous = slot.current.replace(fresh);
        version
    }

    /// Records a failed fit for the slot (the current version, if any,
    /// stays published — that *is* the rollback). Returns the retained
    /// current version number (0 when the slot never had one).
    pub fn record_failed_fit(&self, tenant: &str, table: &str) -> u64 {
        let mut slots = self.slots.write().unwrap_or_else(|e| e.into_inner());
        let slot = slots.entry((tenant.to_string(), table.to_string())).or_default();
        slot.failed_fits += 1;
        slot.current.as_ref().map(|v| v.version).unwrap_or(0)
    }

    /// The version a hot-swap most recently replaced, if retained.
    pub fn previous(&self, tenant: &str, table: &str) -> Option<Arc<EngineVersion>> {
        let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
        slots.get(&(tenant.to_string(), table.to_string()))?.previous.clone()
    }

    /// All slots, sorted by (tenant, table) for stable `status` output.
    pub fn snapshot(&self) -> Vec<EngineSnapshot> {
        let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<EngineSnapshot> = slots
            .iter()
            .map(|((tenant, table), slot)| EngineSnapshot {
                tenant: tenant.clone(),
                table: table.clone(),
                version: slot.current.as_ref().map(|v| v.version).unwrap_or(0),
                statements: slot
                    .current
                    .as_ref()
                    .map(|v| v.guard.program().statements.len())
                    .unwrap_or(0),
                failed_fits: slot.failed_fits,
            })
            .collect();
        out.sort_by(|a, b| (&a.tenant, &a.table).cmp(&(&b.tenant, &b.table)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_dsl::{parse_program, Program};

    fn guard(text: &str) -> Guardrail {
        Guardrail::from_program(parse_program(text).unwrap())
    }

    const P1: &str = r#"GIVEN a ON b HAVING IF a = "1" THEN b <- "x";"#;
    const P2: &str = r#"GIVEN a ON b HAVING IF a = "2" THEN b <- "y";"#;

    #[test]
    fn publish_hot_swaps_and_retains_previous() {
        let reg = EngineRegistry::new();
        assert!(reg.current("t", "tbl").is_none());
        assert_eq!(reg.publish("t", "tbl", guard(P1), 10), 1);
        // A request holding v1 keeps it across the v2 swap.
        let held = reg.current("t", "tbl").unwrap();
        assert_eq!(reg.publish("t", "tbl", guard(P2), 20), 2);
        assert_eq!(held.version, 1);
        assert!(held.constraints.contains("\"1\""));
        let now = reg.current("t", "tbl").unwrap();
        assert_eq!(now.version, 2);
        assert_eq!(reg.previous("t", "tbl").unwrap().version, 1);
        // Tenancy is a real namespace: other keys are untouched.
        assert!(reg.current("t", "other").is_none());
        assert!(reg.current("u", "tbl").is_none());
    }

    #[test]
    fn failed_fit_rolls_back_to_retained_current() {
        let reg = EngineRegistry::new();
        assert_eq!(reg.record_failed_fit("t", "tbl"), 0, "no version to retain yet");
        reg.publish("t", "tbl", guard(P1), 10);
        assert_eq!(reg.record_failed_fit("t", "tbl"), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!((snap[0].version, snap[0].failed_fits), (1, 2));
        // The published program is still the one that succeeded.
        assert!(reg.current("t", "tbl").unwrap().constraints.contains("\"1\""));
    }

    #[test]
    fn concurrent_swap_and_read_never_observe_torn_state() {
        let reg = EngineRegistry::new();
        reg.publish("t", "tbl", guard(P1), 1);
        std::thread::scope(|s| {
            let r = &reg;
            s.spawn(move || {
                for i in 0..50 {
                    let g = if i % 2 == 0 { guard(P2) } else { guard(P1) };
                    r.publish("t", "tbl", g, i);
                }
            });
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..200 {
                        let v = r.current("t", "tbl").expect("always published");
                        // A snapshot is internally consistent: its text
                        // matches its own program, whatever version it is.
                        assert_eq!(v.constraints, v.guard.program().to_string());
                    }
                });
            }
        });
        assert_eq!(reg.current("t", "tbl").unwrap().version, 51);
    }

    #[test]
    fn empty_program_snapshot_reports_zero_statements() {
        let reg = EngineRegistry::new();
        reg.publish("t", "tbl", Guardrail::from_program(Program::empty()), 0);
        assert_eq!(reg.snapshot()[0].statements, 0);
    }
}
