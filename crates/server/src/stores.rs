//! The store registry: persistent [`TableStore`]s keyed by
//! `(tenant, table)`, with a cached [`IncrementalDetector`] per store.
//!
//! The engine registry hot-swaps immutable fitted programs; stores are the
//! opposite — long-lived mutable state (segment + WAL on disk, appended to
//! by the `append` verb). Each key therefore gets its own `Mutex`-guarded
//! slot: appends and incremental detects on one `(tenant, table)` are
//! serialized (the WAL demands a single writer), while different keys
//! proceed in parallel. The outer map lock is held only for the lookup.
//!
//! The cached detector is versioned by the engine version it was built
//! from: a hot-swapped `fit` invalidates it lazily — the next
//! `detect_batch` rebuilds against the new program (one full scan), and
//! every call after that is O(appended batch) again.

use guardrail_core::Guardrail;
use guardrail_dsl::{IncrementalDetector, IncrementalScan};
use guardrail_governor::{Budget, Exhausted};
use guardrail_table::{Table, TableError, TableSource, TableStore};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// One registered store plus its lazily built incremental detector.
#[derive(Debug)]
pub struct StoreSlot {
    /// The persistent store (segment + WAL under the server's store root).
    pub store: TableStore,
    /// Incremental detector built against `detector_version`'s program.
    detector: Option<IncrementalDetector>,
    /// Engine version the cached detector was compiled from.
    detector_version: u64,
}

impl StoreSlot {
    /// Runs one incremental pass over rows appended since the previous
    /// pass, rebuilding the cached detector (one full scan + index build)
    /// when it is cold or was built against a different engine version.
    ///
    /// `None` when the guard's program is empty or does not bind to the
    /// store's schema (the regimes where bulk detect reports clean);
    /// otherwise the detector's result, paired with the rows-seen count
    /// from *before* the pass so callers can slice out the new violations.
    pub fn detect_appended(
        &mut self,
        guard: &Guardrail,
        engine_version: u64,
        budget: &Budget,
    ) -> Option<Result<(usize, IncrementalScan), Exhausted>> {
        if self.detector.is_none() || self.detector_version != engine_version {
            self.detector = guard.incremental(&self.store);
            self.detector_version = engine_version;
        }
        let det = self.detector.as_mut()?;
        let seen_before = det.rows_seen();
        Some(det.detect_appended(&self.store, budget).map(|scan| (seen_before, scan)))
    }

    /// The cached detector, if one is built (read-only view for slicing
    /// cumulative violations after [`detect_appended`](Self::detect_appended)).
    pub fn detector(&self) -> Option<&IncrementalDetector> {
        self.detector.as_ref()
    }
}

/// Registered slots, keyed by `(tenant, table)`.
type SlotMap = HashMap<(String, String), Arc<Mutex<StoreSlot>>>;

/// The registry. Cheap to share (`Arc`); all methods take `&self`.
#[derive(Debug)]
pub struct StoreRegistry {
    root: PathBuf,
    slots: RwLock<SlotMap>,
}

impl StoreRegistry {
    /// A registry rooted at `root`; stores live at `root/tenant/table/`.
    pub fn new(root: impl Into<PathBuf>) -> Arc<Self> {
        Arc::new(Self { root: root.into(), slots: RwLock::new(HashMap::new()) })
    }

    /// On-disk directory for a key. Safe to join blindly: tenant and table
    /// names are validated to `[A-Za-z0-9_.-]` at the protocol boundary.
    pub fn dir(&self, tenant: &str, table: &str) -> PathBuf {
        self.root.join(tenant).join(table)
    }

    /// The slot for `(tenant, table)` if it is registered in memory or
    /// already exists on disk (opened lazily, WAL replayed).
    pub fn open(
        &self,
        tenant: &str,
        table: &str,
    ) -> Result<Option<Arc<Mutex<StoreSlot>>>, TableError> {
        if let Some(slot) = self.lookup(tenant, table) {
            return Ok(Some(slot));
        }
        let dir = self.dir(tenant, table);
        if !TableStore::exists(&dir) {
            return Ok(None);
        }
        let store = TableStore::open(&dir)?;
        Ok(Some(self.insert(tenant, table, store)))
    }

    /// The slot for `(tenant, table)`, creating the on-disk store with
    /// `base` as its segment when none exists yet. Returns `(slot,
    /// created)`.
    pub fn open_or_create(
        &self,
        tenant: &str,
        table: &str,
        base: &Table,
    ) -> Result<(Arc<Mutex<StoreSlot>>, bool), TableError> {
        if let Some(slot) = self.open(tenant, table)? {
            return Ok((slot, false));
        }
        let dir = self.dir(tenant, table);
        std::fs::create_dir_all(dir.parent().unwrap_or(Path::new(".")))?;
        let store = TableStore::create(&dir, base)?;
        Ok((self.insert(tenant, table, store), true))
    }

    /// `(tenant, table, rows, wal_batches)` for every registered store,
    /// sorted for stable `status` output.
    pub fn snapshot(&self) -> Vec<(String, String, usize, usize)> {
        let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<_> = slots
            .iter()
            .map(|((tenant, table), slot)| {
                let slot = slot.lock().unwrap_or_else(|e| e.into_inner());
                (
                    tenant.clone(),
                    table.clone(),
                    slot.store.num_rows(),
                    slot.store.wal_batches().len(),
                )
            })
            .collect();
        out.sort();
        out
    }

    fn lookup(&self, tenant: &str, table: &str) -> Option<Arc<Mutex<StoreSlot>>> {
        let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
        slots.get(&(tenant.to_string(), table.to_string())).cloned()
    }

    fn insert(&self, tenant: &str, table: &str, store: TableStore) -> Arc<Mutex<StoreSlot>> {
        let mut slots = self.slots.write().unwrap_or_else(|e| e.into_inner());
        slots
            .entry((tenant.to_string(), table.to_string()))
            .or_insert_with(|| {
                Arc::new(Mutex::new(StoreSlot { store, detector: None, detector_version: 0 }))
            })
            .clone()
    }
}

/// Locks a slot, recovering from a poisoned mutex (a panicking handler
/// must not wedge the store for every later request — the store's on-disk
/// state is consistent at every WAL record boundary by construction).
pub fn lock_slot(slot: &Arc<Mutex<StoreSlot>>) -> MutexGuard<'_, StoreSlot> {
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Table {
        Table::from_csv_str("zip,city\nwest,Berkeley\nnorth,Portland\n").unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("guardrail-stores-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_append_and_lazy_reopen() {
        let root = tmp("reopen");
        {
            let reg = StoreRegistry::new(&root);
            assert!(reg.open("t", "tbl").unwrap().is_none(), "nothing registered yet");
            let (slot, created) = reg.open_or_create("t", "tbl", &base()).unwrap();
            assert!(created);
            let mut slot = lock_slot(&slot);
            slot.store.append_table(&base()).unwrap();
            assert_eq!(slot.store.num_rows(), 4);
        }
        // A fresh registry (server restart) finds the store on disk.
        let reg = StoreRegistry::new(&root);
        let slot = reg.open("t", "tbl").unwrap().expect("store exists on disk");
        assert_eq!(lock_slot(&slot).store.num_rows(), 4);
        let (_, created) = reg.open_or_create("t", "tbl", &base()).unwrap();
        assert!(!created, "existing store is opened, not clobbered");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn incremental_pass_probes_only_appends_and_tracks_engine_versions() {
        use guardrail_dsl::parse_program;
        let root = tmp("detector");
        let reg = StoreRegistry::new(&root);
        let (slot, _) = reg.open_or_create("t", "tbl", &base()).unwrap();
        let mut slot = lock_slot(&slot);
        let g1 = Guardrail::from_program(
            parse_program(r#"GIVEN zip ON city HAVING IF zip = "west" THEN city <- "Berkeley";"#)
                .unwrap(),
        );
        let budget = Budget::unlimited();
        // First pass seeds the detector (full scan: nothing appended yet).
        let (seen, scan) = slot.detect_appended(&g1, 1, &budget).unwrap().unwrap();
        assert_eq!((seen, scan.rows_scanned), (2, 0));
        // An appended dirty row is probed alone on the next pass.
        let dirty = Table::from_csv_str("zip,city\nwest,Oops\n").unwrap();
        slot.store.append_table(&dirty).unwrap();
        let (seen, scan) = slot.detect_appended(&g1, 1, &budget).unwrap().unwrap();
        assert_eq!((seen, scan.rows_scanned, scan.new_violations), (2, 1, 1));
        assert_eq!(slot.detector().unwrap().violations().len(), 1);
        // A hot-swapped engine version rebuilds the detector from scratch.
        let g2 = Guardrail::from_program(
            parse_program(r#"GIVEN zip ON city HAVING IF zip = "north" THEN city <- "Portland";"#)
                .unwrap(),
        );
        let (seen, scan) = slot.detect_appended(&g2, 2, &budget).unwrap().unwrap();
        assert_eq!((seen, scan.rows_scanned), (3, 0), "rebuild already saw all rows");
        assert_eq!(slot.detector().unwrap().violations().len(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshot_lists_registered_stores() {
        let root = tmp("snapshot");
        let reg = StoreRegistry::new(&root);
        reg.open_or_create("t", "b", &base()).unwrap();
        reg.open_or_create("t", "a", &base()).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].1, "a");
        assert_eq!(snap[1].1, "b");
        let _ = std::fs::remove_dir_all(&root);
    }
}
