//! Error type for the table crate.

use std::fmt;

/// Errors produced by table construction, access, and CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// A column index was out of bounds.
    ColumnIndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of columns in the table.
        num_columns: usize,
    },
    /// A row index was out of bounds.
    RowIndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of rows in the table.
        num_rows: usize,
    },
    /// Columns passed to a builder had mismatched lengths.
    LengthMismatch {
        /// Expected row count.
        expected: usize,
        /// Actual row count.
        actual: usize,
        /// Offending column (or row description).
        column: String,
    },
    /// Duplicate column name in a schema.
    DuplicateColumn(String),
    /// Malformed CSV input.
    Csv {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// I/O failure while reading or writing CSV files.
    Io(String),
    /// Corruption or protocol violation in the storage layer (segments,
    /// WAL, store directories).
    Storage(String),
    /// An empty table (no columns / no header) where one was required.
    Empty,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownColumn(name) => write!(f, "unknown column: {name:?}"),
            TableError::ColumnIndexOutOfBounds { index, num_columns } => {
                write!(f, "column index {index} out of bounds (table has {num_columns} columns)")
            }
            TableError::RowIndexOutOfBounds { index, num_rows } => {
                write!(f, "row index {index} out of bounds (table has {num_rows} rows)")
            }
            TableError::LengthMismatch { expected, actual, column } => {
                write!(f, "column {column:?} has {actual} rows but the table has {expected}")
            }
            TableError::DuplicateColumn(name) => write!(f, "duplicate column name: {name:?}"),
            TableError::Csv { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            TableError::Io(msg) => write!(f, "I/O error: {msg}"),
            TableError::Storage(msg) => write!(f, "storage error: {msg}"),
            TableError::Empty => write!(f, "table has no columns"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e.to_string())
    }
}
