//! Dictionary-encoded columns.

use crate::dictionary::{Code, Dictionary, NULL_CODE};
use crate::schema::DataType;
use crate::value::Value;

/// A dictionary-encoded column: a dense code vector plus the dictionary of
/// distinct values those codes index.
///
/// All analytical work in the workspace — independence tests, FD partitions,
/// DSL condition matching — operates on the `codes` slice directly; values are
/// only materialized at API boundaries (CSV output, SQL results, DSL
/// literals).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Column {
    codes: Vec<Code>,
    dict: Dictionary,
}

impl Column {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a column from values, interning each one.
    pub fn from_values<I: IntoIterator<Item = Value>>(values: I) -> Self {
        let mut col = Column::new();
        for v in values {
            col.push(v);
        }
        col
    }

    /// Builds a column directly from codes and a dictionary.
    ///
    /// # Panics
    /// Panics if any non-null code is outside the dictionary.
    pub fn from_parts(codes: Vec<Code>, dict: Dictionary) -> Self {
        for &c in &codes {
            assert!(c == NULL_CODE || (c as usize) < dict.len(), "code {c} outside dictionary");
        }
        Self { codes, dict }
    }

    /// Appends a value, interning it.
    pub fn push(&mut self, value: Value) {
        let code = self.dict.encode(value);
        self.codes.push(code);
    }

    /// Appends an already-encoded code.
    ///
    /// # Panics
    /// Panics if the code is not in this column's dictionary.
    pub fn push_code(&mut self, code: Code) {
        assert!(
            code == NULL_CODE || (code as usize) < self.dict.len(),
            "code {code} outside dictionary"
        );
        self.codes.push(code);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Raw code slice.
    pub fn codes(&self) -> &[Code] {
        &self.codes
    }

    /// The column's dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Mutable access to the dictionary, for interning new literals (used by
    /// the rectifier when a synthesized literal did not occur in this split).
    pub fn dictionary_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Code of the cell at `row`.
    pub fn code(&self, row: usize) -> Code {
        self.codes[row]
    }

    /// Overwrites the cell at `row` with `value`, interning it if necessary.
    pub fn set(&mut self, row: usize, value: Value) {
        let code = self.dict.encode(value);
        self.codes[row] = code;
    }

    /// Overwrites the cell at `row` with an existing code.
    pub fn set_code(&mut self, row: usize, code: Code) {
        assert!(
            code == NULL_CODE || (code as usize) < self.dict.len(),
            "code {code} outside dictionary"
        );
        self.codes[row] = code;
    }

    /// Decoded value of the cell at `row` (`None` if out of bounds).
    pub fn get(&self, row: usize) -> Option<Value> {
        self.codes.get(row).map(|&c| self.dict.decode(c))
    }

    /// Number of distinct non-null values observed.
    pub fn distinct_count(&self) -> usize {
        self.dict.len()
    }

    /// Count of null cells.
    pub fn null_count(&self) -> usize {
        self.codes.iter().filter(|&&c| c == NULL_CODE).count()
    }

    /// Infers the narrowest [`DataType`] covering the dictionary.
    pub fn infer_type(&self) -> DataType {
        let mut ty: Option<DataType> = None;
        for v in self.dict.values() {
            let t = match v {
                Value::Bool(_) => DataType::Bool,
                Value::Int(_) => DataType::Int,
                Value::Float(_) => DataType::Float,
                Value::Str(_) => DataType::Str,
                Value::Null => continue,
            };
            ty = Some(match ty {
                None => t,
                Some(prev) if prev == t => t,
                Some(DataType::Int) if t == DataType::Float => DataType::Float,
                Some(DataType::Float) if t == DataType::Int => DataType::Float,
                Some(_) => DataType::Mixed,
            });
        }
        ty.unwrap_or(DataType::Mixed)
    }

    /// New column with only the rows at `indices` (gather).
    pub fn take(&self, indices: &[usize]) -> Column {
        let codes = indices.iter().map(|&i| self.codes[i]).collect();
        Column { codes, dict: self.dict.clone() }
    }

    /// Iterates decoded values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.codes.iter().map(move |&c| self.dict.decode(c))
    }

    /// Per-code occurrence counts (index = code). Nulls are not counted.
    pub fn value_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.dict.len()];
        for &c in &self.codes {
            if c != NULL_CODE {
                counts[c as usize] += 1;
            }
        }
        counts
    }

    /// The most frequent code, if any non-null value exists. Ties break toward
    /// the lower code (first observed), keeping results deterministic.
    pub fn mode_code(&self) -> Option<Code> {
        let counts = self.value_counts();
        counts
            .iter()
            .enumerate()
            .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then(ib.cmp(ia)))
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i as Code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[&str]) -> Column {
        Column::from_values(vals.iter().map(|s| Value::from(*s)))
    }

    #[test]
    fn build_and_read() {
        let c = col(&["a", "b", "a"]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.code(0), c.code(2));
        assert_eq!(c.get(1), Some(Value::from("b")));
        assert_eq!(c.get(3), None);
    }

    #[test]
    fn set_interns_new_values() {
        let mut c = col(&["a", "b"]);
        c.set(0, Value::from("c"));
        assert_eq!(c.get(0), Some(Value::from("c")));
        assert_eq!(c.distinct_count(), 3);
    }

    #[test]
    fn take_gathers_rows() {
        let c = col(&["a", "b", "c", "d"]);
        let t = c.take(&[3, 1]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0), Some(Value::from("d")));
        assert_eq!(t.get(1), Some(Value::from("b")));
    }

    #[test]
    fn null_handling() {
        let c = Column::from_values(vec![Value::Null, Value::Int(1), Value::Null]);
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.distinct_count(), 1);
        assert_eq!(c.get(0), Some(Value::Null));
    }

    #[test]
    fn mode_prefers_first_observed_on_tie() {
        let c = col(&["x", "y", "x", "y"]);
        assert_eq!(c.mode_code(), Some(0));
        let c2 = col(&["y", "x", "x"]);
        assert_eq!(c2.dictionary().decode(c2.mode_code().unwrap()), Value::from("x"));
    }

    #[test]
    fn infer_type_widening() {
        let ints = Column::from_values(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(ints.infer_type(), DataType::Int);
        let nums = Column::from_values(vec![Value::Int(1), Value::Float(2.5)]);
        assert_eq!(nums.infer_type(), DataType::Float);
        let mixed = Column::from_values(vec![Value::Int(1), Value::from("a")]);
        assert_eq!(mixed.infer_type(), DataType::Mixed);
    }

    #[test]
    #[should_panic(expected = "outside dictionary")]
    fn push_code_validates() {
        let mut c = col(&["a"]);
        c.push_code(5);
    }
}
