//! The [`Table`] type and its builder.

use crate::column::Column;
use crate::dictionary::Code;
use crate::error::TableError;
use crate::row::{Row, RowView};
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;
use crate::Result;

/// An immutable-schema, column-major relation.
///
/// A `Table` corresponds to the dataset `D` in the paper: rows are program
/// states for the DSL interpreter, columns are attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Builds a table from named columns, inferring field types.
    pub fn from_columns<S: Into<String>>(named: Vec<(S, Column)>) -> Result<Self> {
        let mut fields = Vec::with_capacity(named.len());
        let mut columns = Vec::with_capacity(named.len());
        let mut num_rows = None;
        for (name, col) in named {
            let name = name.into();
            let n = col.len();
            match num_rows {
                None => num_rows = Some(n),
                Some(expected) if expected != n => {
                    return Err(TableError::LengthMismatch { expected, actual: n, column: name })
                }
                _ => {}
            }
            fields.push(Field::new(name, col.infer_type()));
            columns.push(col);
        }
        let schema = Schema::new(fields)?;
        Ok(Self { schema, columns, num_rows: num_rows.unwrap_or(0) })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column at index `i`.
    pub fn column(&self, i: usize) -> Option<&Column> {
        self.columns.get(i)
    }

    /// Mutable column at index `i`.
    pub fn column_mut(&mut self, i: usize) -> Option<&mut Column> {
        self.columns.get_mut(i)
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).and_then(|i| self.columns.get(i))
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Decoded value at (`row`, `col`).
    pub fn get(&self, row: usize, col: usize) -> Option<Value> {
        self.columns.get(col).and_then(|c| c.get(row))
    }

    /// Overwrites the cell at (`row`, `col`).
    pub fn set(&mut self, row: usize, col: usize, value: Value) -> Result<()> {
        if col >= self.columns.len() {
            return Err(TableError::ColumnIndexOutOfBounds {
                index: col,
                num_columns: self.columns.len(),
            });
        }
        if row >= self.num_rows {
            return Err(TableError::RowIndexOutOfBounds { index: row, num_rows: self.num_rows });
        }
        self.columns[col].set(row, value);
        Ok(())
    }

    /// Borrow-free row view for hot loops (codes only).
    pub fn row_codes(&self, row: usize, buf: &mut Vec<Code>) {
        buf.clear();
        buf.extend(self.columns.iter().map(|c| c.code(row)));
    }

    /// A lightweight row view borrowing this table.
    pub fn row(&self, row: usize) -> Option<RowView<'_>> {
        if row < self.num_rows {
            Some(RowView::new(self, row))
        } else {
            None
        }
    }

    /// Materializes row `row` as an owned [`Row`].
    pub fn row_owned(&self, row: usize) -> Option<Row> {
        if row >= self.num_rows {
            return None;
        }
        Some(Row::new(
            self.schema.clone(),
            self.columns.iter().map(|c| c.get(row).unwrap()).collect(),
        ))
    }

    /// Iterates over row views.
    pub fn rows(&self) -> impl Iterator<Item = RowView<'_>> {
        (0..self.num_rows).map(move |i| RowView::new(self, i))
    }

    /// New table containing only the rows at `indices` (gather).
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        Table { schema: self.schema.clone(), columns, num_rows: indices.len() }
    }

    /// New table with the first `n` rows.
    pub fn head(&self, n: usize) -> Table {
        let n = n.min(self.num_rows);
        let indices: Vec<usize> = (0..n).collect();
        self.take(&indices)
    }

    /// New table with only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Table> {
        let mut named = Vec::with_capacity(names.len());
        for &name in names {
            let i = self.schema.try_index_of(name)?;
            named.push((name.to_string(), self.columns[i].clone()));
        }
        Table::from_columns(named)
    }

    /// Rows where `predicate(row_index)` holds.
    pub fn filter_indices<F: FnMut(usize) -> bool>(&self, mut predicate: F) -> Vec<usize> {
        (0..self.num_rows).filter(|&i| predicate(i)).collect()
    }

    /// Re-derives the row count and field types after columns were extended
    /// in place (the storage append/replay path). Keeps the schema
    /// bit-identical to what [`Table::from_columns`] would infer from the
    /// same columns, which is what makes WAL replay equal a from-scratch
    /// load.
    pub(crate) fn refresh_after_append(&mut self) {
        self.num_rows = self.columns.first().map(|c| c.len()).unwrap_or(0);
        let fields = self
            .schema
            .fields()
            .iter()
            .zip(&self.columns)
            .map(|(f, c)| Field::new(f.name().to_string(), c.infer_type()))
            .collect();
        self.schema = Schema::new(fields).expect("column names are unchanged");
    }

    /// Appends rows in row-major order, interning values in the same order
    /// every storage path (create, WAL replay, from-scratch build) uses, so
    /// the result is bit-identical to building the table from the
    /// concatenated rows. Every row must have exactly one cell per column.
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) -> Result<()> {
        let ncols = self.num_columns();
        for row in rows {
            if row.len() != ncols {
                return Err(TableError::Storage(format!(
                    "appended row has {} cells, table has {ncols} columns",
                    row.len()
                )));
            }
        }
        for row in rows {
            for (c, value) in row.iter().enumerate() {
                self.columns[c].push(value.clone());
            }
        }
        self.refresh_after_append();
        Ok(())
    }

    /// Returns fields whose inferred type is in `types`.
    pub fn columns_of_type(&self, types: &[DataType]) -> Vec<usize> {
        self.schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| types.contains(&f.data_type()))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Row-major incremental builder for [`Table`].
///
/// ```
/// use guardrail_table::{TableBuilder, Value};
///
/// let mut b = TableBuilder::new(vec!["a".into(), "b".into()]);
/// b.push_row(vec![Value::Int(1), Value::from("x")]).unwrap();
/// b.push_row(vec![Value::Int(2), Value::from("y")]).unwrap();
/// let t = b.finish().unwrap();
/// assert_eq!(t.num_rows(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    names: Vec<String>,
    columns: Vec<Column>,
    num_rows: usize,
}

impl TableBuilder {
    /// Starts a builder with the given column names.
    pub fn new(names: Vec<String>) -> Self {
        let columns = names.iter().map(|_| Column::new()).collect();
        Self { names, columns, num_rows: 0 }
    }

    /// Appends one row. The value count must match the column count.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(TableError::LengthMismatch {
                expected: self.columns.len(),
                actual: values.len(),
                column: format!("row {}", self.num_rows),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        self.num_rows += 1;
        Ok(())
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.num_rows
    }

    /// `true` when no rows were appended.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Finalizes into a [`Table`].
    pub fn finish(self) -> Result<Table> {
        if self.names.is_empty() {
            return Err(TableError::Empty);
        }
        Table::from_columns(self.names.into_iter().zip(self.columns).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut b = TableBuilder::new(vec!["zip".into(), "city".into(), "pop".into()]);
        b.push_row(vec![Value::Int(94704), Value::from("Berkeley"), Value::Int(120)]).unwrap();
        b.push_row(vec![Value::Int(97201), Value::from("Portland"), Value::Int(650)]).unwrap();
        b.push_row(vec![Value::Int(94704), Value::from("Berkeley"), Value::Int(121)]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.get(1, 1), Some(Value::from("Portland")));
        assert_eq!(t.schema().field(2).unwrap().data_type(), DataType::Int);
    }

    #[test]
    fn mismatched_row_rejected() {
        let mut b = TableBuilder::new(vec!["a".into()]);
        assert!(b.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn take_and_select() {
        let t = sample();
        let sub = t.take(&[2, 0]);
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.get(0, 2), Some(Value::Int(121)));

        let proj = t.select(&["city", "zip"]).unwrap();
        assert_eq!(proj.schema().names(), vec!["city", "zip"]);
        assert_eq!(proj.get(0, 0), Some(Value::from("Berkeley")));
        assert!(t.select(&["nope"]).is_err());
    }

    #[test]
    fn set_updates_cell() {
        let mut t = sample();
        t.set(0, 1, Value::from("Oakland")).unwrap();
        assert_eq!(t.get(0, 1), Some(Value::from("Oakland")));
        assert!(t.set(9, 0, Value::Null).is_err());
        assert!(t.set(0, 9, Value::Null).is_err());
    }

    #[test]
    fn row_codes_buffer() {
        let t = sample();
        let mut buf = Vec::new();
        t.row_codes(0, &mut buf);
        assert_eq!(buf.len(), 3);
        let mut buf2 = Vec::new();
        t.row_codes(2, &mut buf2);
        // rows 0 and 2 share zip+city codes but differ in pop.
        assert_eq!(buf[0], buf2[0]);
        assert_eq!(buf[1], buf2[1]);
        assert_ne!(buf[2], buf2[2]);
    }

    #[test]
    fn columns_of_type() {
        let t = sample();
        assert_eq!(t.columns_of_type(&[DataType::Int]), vec![0, 2]);
        assert_eq!(t.columns_of_type(&[DataType::Str]), vec![1]);
    }
}
