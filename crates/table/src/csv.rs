//! Minimal RFC-4180-style CSV reader/writer.
//!
//! Supports quoted fields, embedded commas/newlines/escaped quotes, and type
//! inference per cell via [`Value::parse_token`]. This is the only ingestion
//! path the workspace needs, so we implement it directly rather than pulling
//! in a CSV dependency.

use crate::error::TableError;
use crate::table::{Table, TableBuilder};
use crate::value::Value;
use crate::Result;
use std::io::Write;
use std::path::Path;

/// Parses one CSV record starting at `pos`; returns fields and the position
/// just past the record's trailing newline.
fn parse_record(data: &[u8], mut pos: usize, line: usize) -> Result<(Vec<String>, usize)> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    while pos < data.len() {
        let c = data[pos];
        if in_quotes {
            match c {
                b'"' => {
                    if data.get(pos + 1) == Some(&b'"') {
                        field.push('"');
                        pos += 2;
                    } else {
                        in_quotes = false;
                        pos += 1;
                    }
                }
                _ => {
                    field.push(c as char);
                    pos += 1;
                }
            }
        } else {
            match c {
                b'"' => {
                    if !field.is_empty() {
                        return Err(TableError::Csv {
                            line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                    pos += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    pos += 1;
                }
                b'\r' => {
                    pos += 1;
                }
                b'\n' => {
                    pos += 1;
                    fields.push(field);
                    return Ok((fields, pos));
                }
                _ => {
                    field.push(c as char);
                    pos += 1;
                }
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv { line, message: "unterminated quoted field".into() });
    }
    fields.push(field);
    Ok((fields, pos))
}

impl Table {
    /// Parses a table from CSV text. The first record is the header.
    pub fn from_csv_str(csv: &str) -> Result<Table> {
        Self::from_csv_bytes(csv.as_bytes())
    }

    /// Parses a table from CSV bytes. The first record is the header.
    pub fn from_csv_bytes(data: impl AsRef<[u8]>) -> Result<Table> {
        let bytes = data.as_ref();
        if bytes.is_empty() {
            return Err(TableError::Empty);
        }
        let (header, mut pos) = parse_record(bytes, 0, 1)?;
        if header.iter().all(|h| h.trim().is_empty()) {
            return Err(TableError::Empty);
        }
        let mut builder = TableBuilder::new(header.iter().map(|h| h.trim().to_string()).collect());
        let mut line = 2usize;
        while pos < bytes.len() {
            let (fields, next) = parse_record(bytes, pos, line)?;
            pos = next;
            if fields.len() == 1 && fields[0].is_empty() {
                line += 1;
                continue; // blank line
            }
            if fields.len() != header.len() {
                return Err(TableError::Csv {
                    line,
                    message: format!("expected {} fields, found {}", header.len(), fields.len()),
                });
            }
            builder.push_row(fields.iter().map(|f| Value::parse_token(f)).collect())?;
            line += 1;
        }
        builder.finish()
    }

    /// Reads a CSV file from disk.
    pub fn from_csv_path(path: impl AsRef<Path>) -> Result<Table> {
        let data = std::fs::read(path)?;
        Self::from_csv_bytes(data)
    }

    /// Serializes the table to CSV text (header + rows).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self.schema().names();
        out.push_str(&names.iter().map(|n| escape(n)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in 0..self.num_rows() {
            let mut first = true;
            for col in 0..self.num_columns() {
                if !first {
                    out.push(',');
                }
                first = false;
                let v = self.get(row, col).unwrap_or(Value::Null);
                out.push_str(&escape(&v.to_string()));
            }
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV to `path`.
    pub fn write_csv_path(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv_string().as_bytes())?;
        Ok(())
    }
}

/// Quotes a field if it contains a delimiter, quote, or newline.
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_roundtrip() {
        let csv = "a,b\n1,x\n2,y\n";
        let t = Table::from_csv_str(csv).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.get(0, 0), Some(Value::Int(1)));
        assert_eq!(t.to_csv_string(), csv);
    }

    #[test]
    fn quoted_fields() {
        let csv = "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n";
        let t = Table::from_csv_str(csv).unwrap();
        assert_eq!(t.get(0, 0), Some(Value::from("hello, world")));
        assert_eq!(t.get(0, 1), Some(Value::from("say \"hi\"")));
        // roundtrip re-escapes
        let again = Table::from_csv_str(&t.to_csv_string()).unwrap();
        assert_eq!(again.get(0, 0), t.get(0, 0));
    }

    #[test]
    fn crlf_and_blank_lines() {
        let csv = "a,b\r\n1,x\r\n\r\n2,y\r\n";
        let t = Table::from_csv_str(csv).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn field_count_mismatch_rejected() {
        let err = Table::from_csv_str("a,b\n1\n").unwrap_err();
        assert!(matches!(err, TableError::Csv { line: 2, .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(Table::from_csv_str(""), Err(TableError::Empty)));
    }

    #[test]
    fn missing_values_become_null() {
        let t = Table::from_csv_str("a,b\n1,\n,x\n").unwrap();
        assert_eq!(t.get(0, 1), Some(Value::Null));
        assert_eq!(t.get(1, 0), Some(Value::Null));
    }

    #[test]
    fn no_trailing_newline() {
        let t = Table::from_csv_str("a,b\n1,x").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.get(0, 1), Some(Value::from("x")));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(Table::from_csv_str("a\n\"oops").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("guardrail_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let t = Table::from_csv_str("a,b\n1,x\n").unwrap();
        t.write_csv_path(&path).unwrap();
        let back = Table::from_csv_path(&path).unwrap();
        assert_eq!(back.num_rows(), 1);
        assert_eq!(back.get(0, 1), Some(Value::from("x")));
    }
}
