//! Minimal RFC-4180-style CSV reader/writer.
//!
//! Supports quoted fields, embedded commas/newlines/escaped quotes, and type
//! inference per cell via [`Value::parse_token`]. This is the only ingestion
//! path the workspace needs, so we implement it directly rather than pulling
//! in a CSV dependency.

use crate::error::TableError;
use crate::table::{Table, TableBuilder};
use crate::value::Value;
use crate::Result;
use std::io::Write;
use std::path::Path;

/// Parses one CSV record starting at `pos`; returns fields and the position
/// just past the record's trailing newline.
fn parse_record(data: &[u8], mut pos: usize, line: usize) -> Result<(Vec<String>, usize)> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    while pos < data.len() {
        let c = data[pos];
        if in_quotes {
            match c {
                b'"' => {
                    if data.get(pos + 1) == Some(&b'"') {
                        field.push('"');
                        pos += 2;
                    } else {
                        in_quotes = false;
                        pos += 1;
                    }
                }
                _ => {
                    field.push(c as char);
                    pos += 1;
                }
            }
        } else {
            match c {
                b'"' => {
                    if !field.is_empty() {
                        return Err(TableError::Csv {
                            line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                    pos += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    pos += 1;
                }
                b'\r' => {
                    pos += 1;
                }
                b'\n' => {
                    pos += 1;
                    fields.push(field);
                    return Ok((fields, pos));
                }
                _ => {
                    field.push(c as char);
                    pos += 1;
                }
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv { line, message: "unterminated quoted field".into() });
    }
    fields.push(field);
    Ok((fields, pos))
}

impl Table {
    /// Parses a table from CSV text. The first record is the header.
    pub fn from_csv_str(csv: &str) -> Result<Table> {
        Self::from_csv_bytes(csv.as_bytes())
    }

    /// Parses a table from CSV bytes. The first record is the header.
    pub fn from_csv_bytes(data: impl AsRef<[u8]>) -> Result<Table> {
        let bytes = data.as_ref();
        if bytes.is_empty() {
            return Err(TableError::Empty);
        }
        let (header, mut pos) = parse_record(bytes, 0, 1)?;
        if header.iter().all(|h| h.trim().is_empty()) {
            return Err(TableError::Empty);
        }
        let mut builder = TableBuilder::new(header.iter().map(|h| h.trim().to_string()).collect());
        let mut line = 2usize;
        while pos < bytes.len() {
            let (fields, next) = parse_record(bytes, pos, line)?;
            pos = next;
            if fields.len() == 1 && fields[0].is_empty() {
                line += 1;
                continue; // blank line
            }
            if fields.len() != header.len() {
                return Err(TableError::Csv {
                    line,
                    message: format!("expected {} fields, found {}", header.len(), fields.len()),
                });
            }
            builder.push_row(fields.iter().map(|f| Value::parse_token(f)).collect())?;
            line += 1;
        }
        builder.finish()
    }

    /// Reads a CSV file from disk.
    pub fn from_csv_path(path: impl AsRef<Path>) -> Result<Table> {
        let data = std::fs::read(path)?;
        Self::from_csv_bytes(data)
    }

    /// Serializes the table to CSV text (header + rows).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self.schema().names();
        out.push_str(&names.iter().map(|n| escape(n)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in 0..self.num_rows() {
            let mut first = true;
            for col in 0..self.num_columns() {
                if !first {
                    out.push(',');
                }
                first = false;
                let v = self.get(row, col).unwrap_or(Value::Null);
                out.push_str(&escape(&v.to_string()));
            }
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV to `path`.
    pub fn write_csv_path(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv_string().as_bytes())?;
        Ok(())
    }
}

/// A streaming CSV reader that yields row batches without loading the whole
/// file, for ingesting large files into a persistent store.
///
/// Semantics match [`Table::from_csv_bytes`] exactly — same record parser,
/// same blank-line skipping, same [`Value::parse_token`] typing — so
/// batch-wise ingestion of a file produces the same rows, in the same
/// order, as a whole-file load.
///
/// ```
/// use guardrail_table::csv::CsvBatchReader;
///
/// let data = "a,b\n1,x\n2,y\n3,z\n";
/// let mut reader = CsvBatchReader::new(data.as_bytes(), 2).unwrap();
/// let first = reader.next_batch().unwrap().unwrap();
/// assert_eq!(first.num_rows(), 2);
/// let second = reader.next_batch().unwrap().unwrap();
/// assert_eq!(second.num_rows(), 1);
/// assert!(reader.next_batch().unwrap().is_none());
/// ```
pub struct CsvBatchReader<R: std::io::Read> {
    reader: R,
    /// Unconsumed bytes; `pos` is the parse cursor into it.
    buf: Vec<u8>,
    pos: usize,
    eof: bool,
    header: Vec<String>,
    line: usize,
    batch_rows: usize,
}

/// Bytes pulled from the underlying reader per refill.
const READ_CHUNK: usize = 64 * 1024;

impl<R: std::io::Read> CsvBatchReader<R> {
    /// Wraps `reader`, immediately parsing the header record. Batches hold
    /// at most `batch_rows` rows (minimum 1).
    pub fn new(reader: R, batch_rows: usize) -> Result<Self> {
        let mut r = CsvBatchReader {
            reader,
            buf: Vec::new(),
            pos: 0,
            eof: false,
            header: Vec::new(),
            line: 1,
            batch_rows: batch_rows.max(1),
        };
        match r.next_record()? {
            Some(header) if !header.iter().all(|h| h.trim().is_empty()) => {
                r.header = header.iter().map(|h| h.trim().to_string()).collect();
                Ok(r)
            }
            _ => Err(TableError::Empty),
        }
    }

    /// The trimmed header fields.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Reads the next batch of up to `batch_rows` rows; `None` at EOF.
    pub fn next_batch(&mut self) -> Result<Option<Table>> {
        let mut builder = TableBuilder::new(self.header.clone());
        while builder.len() < self.batch_rows {
            let Some(fields) = self.next_record()? else { break };
            if fields.len() == 1 && fields[0].is_empty() {
                continue; // blank line, same as the whole-file loader
            }
            if fields.len() != self.header.len() {
                return Err(TableError::Csv {
                    line: self.line - 1,
                    message: format!(
                        "expected {} fields, found {}",
                        self.header.len(),
                        fields.len()
                    ),
                });
            }
            builder.push_row(fields.iter().map(|f| Value::parse_token(f)).collect())?;
        }
        if builder.is_empty() {
            return Ok(None);
        }
        builder.finish().map(Some)
    }

    /// Parses one record, refilling from the reader when the buffered bytes
    /// may end mid-record. Returns `None` at end of input.
    fn next_record(&mut self) -> Result<Option<Vec<String>>> {
        loop {
            if self.pos >= self.buf.len() {
                if !self.fill()? {
                    return Ok(None);
                }
                continue;
            }
            match parse_record(&self.buf, self.pos, self.line) {
                // A record that ran to the end of the buffer is only
                // complete if the input is exhausted — otherwise the tail
                // of the record may still be in the reader.
                Ok((fields, next)) if next < self.buf.len() || self.eof => {
                    self.pos = next;
                    self.line += 1;
                    self.compact();
                    return Ok(Some(fields));
                }
                Ok(_) => {
                    self.fill()?;
                }
                // An unterminated quote is an error only at true EOF.
                Err(e) => {
                    if self.eof {
                        return Err(e);
                    }
                    self.fill()?;
                }
            }
        }
    }

    /// Pulls one chunk from the reader; `false` when nothing is left.
    fn fill(&mut self) -> Result<bool> {
        if self.eof {
            return Ok(false);
        }
        let start = self.buf.len();
        self.buf.resize(start + READ_CHUNK, 0);
        let n = self.reader.read(&mut self.buf[start..])?;
        self.buf.truncate(start + n);
        if n == 0 {
            self.eof = true;
        }
        Ok(n > 0)
    }

    /// Drops consumed bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.pos > READ_CHUNK && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Quotes a field if it contains a delimiter, quote, or newline.
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_roundtrip() {
        let csv = "a,b\n1,x\n2,y\n";
        let t = Table::from_csv_str(csv).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.get(0, 0), Some(Value::Int(1)));
        assert_eq!(t.to_csv_string(), csv);
    }

    #[test]
    fn quoted_fields() {
        let csv = "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n";
        let t = Table::from_csv_str(csv).unwrap();
        assert_eq!(t.get(0, 0), Some(Value::from("hello, world")));
        assert_eq!(t.get(0, 1), Some(Value::from("say \"hi\"")));
        // roundtrip re-escapes
        let again = Table::from_csv_str(&t.to_csv_string()).unwrap();
        assert_eq!(again.get(0, 0), t.get(0, 0));
    }

    #[test]
    fn crlf_and_blank_lines() {
        let csv = "a,b\r\n1,x\r\n\r\n2,y\r\n";
        let t = Table::from_csv_str(csv).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn field_count_mismatch_rejected() {
        let err = Table::from_csv_str("a,b\n1\n").unwrap_err();
        assert!(matches!(err, TableError::Csv { line: 2, .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(Table::from_csv_str(""), Err(TableError::Empty)));
    }

    #[test]
    fn missing_values_become_null() {
        let t = Table::from_csv_str("a,b\n1,\n,x\n").unwrap();
        assert_eq!(t.get(0, 1), Some(Value::Null));
        assert_eq!(t.get(1, 0), Some(Value::Null));
    }

    #[test]
    fn no_trailing_newline() {
        let t = Table::from_csv_str("a,b\n1,x").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.get(0, 1), Some(Value::from("x")));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(Table::from_csv_str("a\n\"oops").is_err());
    }

    #[test]
    fn batch_reader_matches_whole_file_load() {
        // Big enough to span several read chunks, with quoted commas,
        // embedded newlines, blank lines, and a missing trailing newline.
        let mut csv = String::from("a,b\n");
        for i in 0..20_000 {
            if i % 97 == 0 {
                csv.push('\n'); // blank line
            }
            csv.push_str(&format!("{i},\"x,{i}\ny\"\n"));
        }
        csv.pop(); // no trailing newline on the last record
        let whole = Table::from_csv_str(&csv).unwrap();

        let mut reader = CsvBatchReader::new(csv.as_bytes(), 333).unwrap();
        assert_eq!(reader.header(), ["a", "b"]);
        let mut streamed = TableBuilder::new(vec!["a".into(), "b".into()]);
        while let Some(batch) = reader.next_batch().unwrap() {
            assert!(batch.num_rows() <= 333);
            for r in 0..batch.num_rows() {
                streamed.push_row(batch.row_owned(r).unwrap().into_values()).unwrap();
            }
        }
        let streamed = streamed.finish().unwrap();
        assert_eq!(streamed, whole, "streamed batches re-assemble the whole-file load exactly");
    }

    #[test]
    fn batch_reader_rejects_bad_input_like_whole_file_load() {
        assert!(matches!(CsvBatchReader::new("".as_bytes(), 8), Err(TableError::Empty)));
        let mut r = CsvBatchReader::new("a,b\n1\n".as_bytes(), 8).unwrap();
        assert!(matches!(r.next_batch(), Err(TableError::Csv { .. })));
        let mut r = CsvBatchReader::new("a\n\"oops".as_bytes(), 8).unwrap();
        assert!(r.next_batch().is_err(), "unterminated quote surfaces at EOF");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("guardrail_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let t = Table::from_csv_str("a,b\n1,x\n").unwrap();
        t.write_csv_path(&path).unwrap();
        let back = Table::from_csv_path(&path).unwrap();
        assert_eq!(back.num_rows(), 1);
        assert_eq!(back.get(0, 1), Some(Value::from("x")));
    }
}
