//! Per-column dictionaries mapping codes to distinct values.

use crate::value::Value;
use std::collections::HashMap;

/// Dictionary code for a cell. `NULL_CODE` marks missing values; all other
/// codes index into the owning column's [`Dictionary`].
pub type Code = u32;

/// Sentinel code for `Value::Null`. Nulls are kept out of the dictionary so
/// that `distinct_count` and value enumeration reflect observed non-null
/// values only (the paper's DSL never asserts over missing cells).
pub const NULL_CODE: Code = u32::MAX;

/// An append-only mapping between distinct [`Value`]s and dense `u32` codes.
///
/// Codes are assigned in first-observation order, which keeps encoding
/// deterministic for a given input — a property the synthesis pipeline relies
/// on for reproducible runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dictionary {
    values: Vec<Value>,
    index: HashMap<Value, Code>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct non-null values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Interns `value`, returning its code. Null always returns [`NULL_CODE`].
    pub fn encode(&mut self, value: Value) -> Code {
        if value.is_null() {
            return NULL_CODE;
        }
        if let Some(&code) = self.index.get(&value) {
            return code;
        }
        let code = self.values.len() as Code;
        assert!(code < NULL_CODE, "dictionary overflow: more than u32::MAX - 1 distinct values");
        self.index.insert(value.clone(), code);
        self.values.push(value);
        code
    }

    /// Looks up the code of an already-interned value without inserting.
    pub fn lookup(&self, value: &Value) -> Option<Code> {
        if value.is_null() {
            return Some(NULL_CODE);
        }
        self.index.get(value).copied()
    }

    /// Decodes a code back into its value. [`NULL_CODE`] decodes to `Null`.
    pub fn decode(&self, code: Code) -> Value {
        if code == NULL_CODE {
            Value::Null
        } else {
            self.values[code as usize].clone()
        }
    }

    /// Borrowing variant of [`Dictionary::decode`]; `None` for null.
    pub fn get(&self, code: Code) -> Option<&Value> {
        if code == NULL_CODE {
            None
        } else {
            self.values.get(code as usize)
        }
    }

    /// Iterates over `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (Code, &Value)> {
        self.values.iter().enumerate().map(|(i, v)| (i as Code, v))
    }

    /// All distinct values, in code order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut d = Dictionary::new();
        let a = d.encode(Value::from("x"));
        let b = d.encode(Value::Int(7));
        let a2 = d.encode(Value::from("x"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.decode(a), Value::from("x"));
        assert_eq!(d.decode(b), Value::Int(7));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn null_uses_sentinel() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode(Value::Null), NULL_CODE);
        assert_eq!(d.decode(NULL_CODE), Value::Null);
        assert!(d.is_empty());
        assert_eq!(d.lookup(&Value::Null), Some(NULL_CODE));
    }

    #[test]
    fn lookup_does_not_insert() {
        let d = Dictionary::new();
        assert_eq!(d.lookup(&Value::from("missing")), None);
    }

    #[test]
    fn codes_are_first_observation_order() {
        let mut d = Dictionary::new();
        for (i, s) in ["c", "a", "b"].iter().enumerate() {
            assert_eq!(d.encode(Value::from(*s)), i as Code);
        }
    }
}
