//! Write-ahead log for appended row batches.
//!
//! Appends to a persistent table are durable the moment their WAL record
//! hits disk; the base segment is only rewritten on
//! [`compact`](crate::TableStore::compact). Each record carries one row
//! batch as **values** (not codes): replay re-interns values through the
//! live dictionaries in row-major order, which reproduces the exact code
//! assignment of the original append — the determinism the engine and
//! statistics layers depend on.
//!
//! ```text
//! file   := header record*
//! header := magic "GRWAL001"
//! record := marker "GWAL" (u32)
//!           batch_id: u64 LE
//!           payload_len: u32 LE
//!           payload
//!           checksum64(batch_id ++ payload): u64 LE
//! payload:= nrows: u32, ncols: u32, then row-major tagged cell values
//! ```
//!
//! # Recovery rules
//!
//! On open the log is scanned record by record:
//!
//! 1. A record that is incomplete, has a bad marker, or fails its checksum
//!    ends the scan — it and everything after it are a **torn tail**, and
//!    the file is truncated back to the last complete record. A torn tail
//!    can only be the suffix interrupted by the crash: every earlier
//!    record was complete when its append returned.
//! 2. A record whose `batch_id` was already replayed is **skipped but kept**
//!    (a retried append may have been written twice; replay is idempotent).
//! 3. Batches replay in file order, so recovery is bit-identical to a
//!    process that appended the same batches and never crashed.

use crate::codec::{checksum64, get_value, put_u32, put_u64, put_value, Cursor};
use crate::error::TableError;
use crate::value::Value;
use crate::Result;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC_HEAD: &[u8; 8] = b"GRWAL001";
const RECORD_MARKER: u32 = 0x4c41_5747; // "GWAL" little-endian

/// One recovered (or about-to-be-written) row batch.
#[derive(Debug, Clone, PartialEq)]
pub struct WalBatch {
    /// Monotonic batch id assigned by the store.
    pub id: u64,
    /// Row-major cell values; every row has the store's column count.
    pub rows: Vec<Vec<Value>>,
}

/// Outcome of scanning a WAL file on open.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WalScan {
    /// Complete, checksum-valid batches in file order, duplicates removed.
    pub batches: Vec<WalBatch>,
    /// File offset just past the last complete record.
    pub valid_len: u64,
    /// Whether a torn tail was truncated away.
    pub truncated_tail: bool,
    /// Duplicate records skipped during replay.
    pub duplicates_skipped: usize,
}

/// Encodes one record (marker + id + payload + checksum).
pub(crate) fn encode_record(id: u64, rows: &[Vec<Value>], ncols: usize) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u32(&mut payload, rows.len() as u32);
    put_u32(&mut payload, ncols as u32);
    for row in rows {
        for value in row {
            put_value(&mut payload, value);
        }
    }
    let mut sum_input = Vec::with_capacity(8 + payload.len());
    put_u64(&mut sum_input, id);
    sum_input.extend_from_slice(&payload);
    let sum = checksum64(&sum_input);

    let mut out = Vec::with_capacity(24 + payload.len());
    put_u32(&mut out, RECORD_MARKER);
    put_u64(&mut out, id);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    put_u64(&mut out, sum);
    out
}

/// Decodes a record payload into rows, validating the column count.
fn decode_payload(payload: &[u8], ncols_expected: usize) -> Result<Vec<Vec<Value>>> {
    let mut cur = Cursor::new(payload, "wal record");
    let nrows = cur.u32()? as usize;
    let ncols = cur.u32()? as usize;
    if ncols != ncols_expected {
        return Err(TableError::Storage(format!(
            "wal batch has {ncols} columns, store has {ncols_expected}"
        )));
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(get_value(&mut cur)?);
        }
        rows.push(row);
    }
    if cur.remaining() != 0 {
        return Err(TableError::Storage("wal record has trailing bytes".into()));
    }
    Ok(rows)
}

/// Scans WAL bytes, applying the recovery rules above. Records after the
/// first invalid one are ignored (torn tail).
pub(crate) fn scan(bytes: &[u8], ncols: usize) -> WalScan {
    let mut batches = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut duplicates_skipped = 0usize;
    // A file too short for (or without) the header magic is itself a torn
    // tail: recover to an empty log.
    if bytes.len() < MAGIC_HEAD.len() || &bytes[..8] != MAGIC_HEAD {
        return WalScan { batches, valid_len: 0, truncated_tail: true, duplicates_skipped };
    }
    let mut pos = MAGIC_HEAD.len();
    let mut truncated_tail = false;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break; // clean end of log
        }
        // marker(4) + id(8) + len(4) + payload + checksum(8)
        let parsed = (|| -> Option<(u64, &[u8], usize)> {
            if rest.len() < 16 {
                return None;
            }
            let marker = u32::from_le_bytes(rest[0..4].try_into().unwrap());
            if marker != RECORD_MARKER {
                return None;
            }
            let id = u64::from_le_bytes(rest[4..12].try_into().unwrap());
            let len = u32::from_le_bytes(rest[12..16].try_into().unwrap()) as usize;
            let total = 16usize.checked_add(len)?.checked_add(8)?;
            if rest.len() < total {
                return None;
            }
            let payload = &rest[16..16 + len];
            let stored = u64::from_le_bytes(rest[16 + len..total].try_into().unwrap());
            let mut sum_input = Vec::with_capacity(8 + len);
            put_u64(&mut sum_input, id);
            sum_input.extend_from_slice(payload);
            if checksum64(&sum_input) != stored {
                return None;
            }
            Some((id, payload, total))
        })();
        let Some((id, payload, total)) = parsed else {
            truncated_tail = true;
            break;
        };
        // The record is complete and checksum-valid; a payload that fails
        // structural decode is corruption the checksum should have caught —
        // treat it as tail damage too rather than replaying garbage.
        let Ok(rows) = decode_payload(payload, ncols) else {
            truncated_tail = true;
            break;
        };
        pos += total;
        if !seen.insert(id) {
            duplicates_skipped += 1;
            continue;
        }
        batches.push(WalBatch { id, rows });
    }
    WalScan { batches, valid_len: pos as u64, truncated_tail, duplicates_skipped }
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Creates a fresh, empty log (header only), fsynced.
    pub(crate) fn create(path: impl AsRef<Path>) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        file.write_all(MAGIC_HEAD)?;
        file.sync_all()?;
        Ok(Wal { file, path })
    }

    /// Opens the log at `path`, running recovery. Returns the log
    /// positioned for appends plus the scan outcome. A torn tail is
    /// physically truncated away so later appends extend a valid file.
    pub(crate) fn open(path: impl AsRef<Path>, ncols: usize) -> Result<(Wal, WalScan)> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path)?;
        let scan = scan(&bytes, ncols);
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        if scan.truncated_tail {
            if scan.valid_len == 0 {
                // Header itself was torn: rewrite it.
                file.set_len(0)?;
                file.write_all(MAGIC_HEAD)?;
            } else {
                file.set_len(scan.valid_len)?;
            }
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((Wal { file, path }, scan))
    }

    /// Appends one batch record and fsyncs. The batch is durable when this
    /// returns.
    pub(crate) fn append(&mut self, id: u64, rows: &[Vec<Value>], ncols: usize) -> Result<()> {
        let record = encode_record(id, rows, ncols);
        self.file.write_all(&record)?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Truncates the log back to just the header (after a compaction folded
    /// its batches into the base segment).
    pub(crate) fn reset(&mut self) -> Result<()> {
        self.file.set_len(MAGIC_HEAD.len() as u64)?;
        self.file.sync_all()?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }

    /// The log's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length in bytes (test hook, like `read_back`).
    #[cfg(test)]
    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Re-reads the file and returns its bytes (test + tooling hook).
    #[cfg(test)]
    fn read_back(&mut self) -> Vec<u8> {
        use std::io::Read;
        let mut buf = Vec::new();
        self.file.seek(SeekFrom::Start(0)).unwrap();
        self.file.read_to_end(&mut buf).unwrap();
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("guardrail_wal_tests").join(name);
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn batch(id: u64) -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(id as i64), Value::from(format!("v{id}"))],
            vec![Value::Null, Value::Bool(id % 2 == 0)],
        ]
    }

    #[test]
    fn append_then_open_replays_in_order() {
        let d = dir("replay");
        let mut wal = Wal::create(d.join("wal.log")).unwrap();
        for id in 1..=3u64 {
            wal.append(id, &batch(id), 2).unwrap();
        }
        drop(wal);
        let (_, scan) = Wal::open(d.join("wal.log"), 2).unwrap();
        assert_eq!(scan.batches.len(), 3);
        assert_eq!(scan.batches.iter().map(|b| b.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(scan.batches[0].rows, batch(1));
        assert!(!scan.truncated_tail);
        assert_eq!(scan.duplicates_skipped, 0);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let d = dir("torn");
        let path = d.join("wal.log");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &batch(1), 2).unwrap();
        let good_len = wal.len().unwrap();
        wal.append(2, &batch(2), 2).unwrap();
        let full = wal.read_back();
        drop(wal);
        // Cut the second record at every possible byte boundary (strictly
        // inside it): recovery must always land exactly on the end of
        // record 1.
        for cut in good_len as usize + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (mut reopened, scan) = Wal::open(&path, 2).unwrap();
            assert_eq!(scan.batches.len(), 1, "cut at {cut}");
            assert!(scan.truncated_tail, "cut at {cut}");
            assert_eq!(reopened.len().unwrap(), good_len, "cut at {cut} truncates to last good");
        }
    }

    #[test]
    fn corrupted_record_ends_the_scan() {
        let d = dir("flip");
        let path = d.join("wal.log");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &batch(1), 2).unwrap();
        let good_len = wal.len().unwrap() as usize;
        wal.append(2, &batch(2), 2).unwrap();
        let mut bytes = wal.read_back();
        drop(wal);
        bytes[good_len + 20] ^= 0xff; // inside record 2's payload
        std::fs::write(&path, &bytes).unwrap();
        let (_, scan) = Wal::open(&path, 2).unwrap();
        assert_eq!(scan.batches.len(), 1);
        assert!(scan.truncated_tail);
    }

    #[test]
    fn duplicate_batch_ids_replay_once() {
        let d = dir("dup");
        let path = d.join("wal.log");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &batch(1), 2).unwrap();
        wal.append(1, &batch(1), 2).unwrap(); // retried append
        wal.append(2, &batch(2), 2).unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path, 2).unwrap();
        assert_eq!(scan.batches.iter().map(|b| b.id).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(scan.duplicates_skipped, 1);
        assert!(!scan.truncated_tail, "duplicates are kept, not treated as damage");
    }

    #[test]
    fn torn_header_recovers_to_empty_log() {
        let d = dir("header");
        let path = d.join("wal.log");
        std::fs::write(&path, &MAGIC_HEAD[..3]).unwrap();
        let (mut wal, scan) = Wal::open(&path, 2).unwrap();
        assert!(scan.batches.is_empty());
        assert!(scan.truncated_tail);
        // The reopened log is usable.
        wal.append(1, &batch(1), 2).unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path, 2).unwrap();
        assert_eq!(scan.batches.len(), 1);
        assert!(!scan.truncated_tail);
    }

    #[test]
    fn reset_empties_the_log() {
        let d = dir("reset");
        let path = d.join("wal.log");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &batch(1), 2).unwrap();
        wal.reset().unwrap();
        wal.append(9, &batch(9), 2).unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path, 2).unwrap();
        assert_eq!(scan.batches.iter().map(|b| b.id).collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn column_count_mismatch_is_tail_damage() {
        let d = dir("ncols");
        let path = d.join("wal.log");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &batch(1), 2).unwrap();
        drop(wal);
        // Scanning with the wrong store arity rejects the record.
        let bytes = std::fs::read(&path).unwrap();
        let scan = scan(&bytes, 3);
        assert!(scan.batches.is_empty());
        assert!(scan.truncated_tail);
    }
}
