//! Shared byte-level encoding for the storage layer (segments + WAL).
//!
//! Everything is little-endian and hand-rolled: the workspace takes no
//! serialization dependency. Values are tagged (`0=Null, 1=Bool, 2=Int,
//! 3=Float, 4=Str`); floats are stored as raw IEEE-754 bits so the encode →
//! decode roundtrip is bit-exact. Integrity is guarded by a 64-bit FNV-1a
//! checksum — cheap, dependency-free, and plenty to catch the torn or
//! bit-rotted tails the recovery path must detect (it is not a
//! cryptographic MAC and does not need to be).

use crate::error::TableError;
use crate::value::Value;
use crate::Result;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`.
pub(crate) fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked read cursor over a byte buffer.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context for error messages ("segment", "wal record", ...).
    what: &'static str,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8], what: &'static str) -> Self {
        Cursor { buf, pos: 0, what }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn truncated(&self) -> TableError {
        TableError::Storage(format!("truncated {} at byte {}", self.what, self.pos))
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.truncated());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self, len: usize) -> Result<String> {
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| TableError::Storage(format!("invalid UTF-8 in {}", self.what)))
    }
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;

/// Appends the tagged encoding of `v` to `out`.
pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_u32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Reads one tagged value.
pub(crate) fn get_value(cur: &mut Cursor<'_>) -> Result<Value> {
    match cur.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => Ok(Value::Bool(cur.u8()? != 0)),
        TAG_INT => Ok(Value::Int(i64::from_le_bytes(cur.take(8)?.try_into().unwrap()))),
        TAG_FLOAT => {
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(cur.take(8)?.try_into().unwrap()))))
        }
        TAG_STR => {
            let len = cur.u32()? as usize;
            Ok(Value::Str(cur.str(len)?))
        }
        tag => Err(TableError::Storage(format!("unknown value tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_is_bit_exact() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.5),
            Value::Float(-0.0),
            Value::Str(String::new()),
            Value::Str("héllo, wörld".into()),
        ];
        let mut buf = Vec::new();
        for v in &values {
            put_value(&mut buf, v);
        }
        let mut cur = Cursor::new(&buf, "test");
        for v in &values {
            let back = get_value(&mut cur).unwrap();
            match (v, &back) {
                // -0.0 == 0.0 under PartialEq; compare bits to prove exactness.
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(*v, back),
            }
        }
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Str("hello".into()));
        for cut in 0..buf.len() {
            let mut cur = Cursor::new(&buf[..cut], "test");
            assert!(get_value(&mut cur).is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum64(b"guardrail");
        assert_eq!(a, checksum64(b"guardrail"), "deterministic");
        assert_ne!(a, checksum64(b"guardrail\0"), "length-sensitive");
        assert_ne!(a, checksum64(b"guardrails"), "content-sensitive");
        assert_eq!(checksum64(b""), FNV_OFFSET);
    }
}
