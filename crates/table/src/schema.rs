//! Table schemas.

use crate::error::TableError;
use crate::Result;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Logical type of a column.
///
/// Guardrail treats every attribute as categorical for synthesis purposes; the
/// data type records what the underlying values look like so that the SQL
/// layer can type-check aggregates and the dataset generators can decide which
/// columns are sensible aggregation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean-valued column.
    Bool,
    /// Integer-valued column.
    Int,
    /// Floating-point column.
    Float,
    /// String-valued column.
    Str,
    /// Column with mixed or unknown value types.
    Mixed,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Mixed => "mixed",
        };
        f.write_str(s)
    }
}

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    name: String,
    data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self { name: name.into(), data_type }
    }

    /// Field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Field type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }
}

/// An ordered collection of uniquely named fields.
///
/// Schemas are cheap to clone (`Arc` internals) and are shared between a table
/// and the views/splits derived from it.
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
    by_name: Arc<HashMap<String, usize>>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name().to_string(), i).is_some() {
                return Err(TableError::DuplicateColumn(f.name().to_string()));
            }
        }
        Ok(Self { fields: Arc::new(fields), by_name: Arc::new(by_name) })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (S, DataType)>,
        S: Into<String>,
    {
        Self::new(pairs.into_iter().map(|(n, t)| Field::new(n, t)).collect())
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> Option<&Field> {
        self.fields.get(i)
    }

    /// All fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Index of the field named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Like [`Schema::index_of`] but returns a typed error.
    pub fn try_index_of(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| TableError::UnknownColumn(name.to_string()))
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name()).collect()
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}
impl Eq for Schema {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::from_pairs([("a", DataType::Int), ("b", DataType::Str)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
        assert_eq!(s.field(0).unwrap().name(), "a");
        assert_eq!(s.names(), vec!["a", "b"]);
    }

    #[test]
    fn rejects_duplicates() {
        let err = Schema::from_pairs([("a", DataType::Int), ("a", DataType::Str)]).unwrap_err();
        assert_eq!(err, TableError::DuplicateColumn("a".into()));
    }

    #[test]
    fn try_index_of_error() {
        let s = Schema::from_pairs([("a", DataType::Int)]).unwrap();
        assert!(matches!(s.try_index_of("zz"), Err(TableError::UnknownColumn(_))));
    }
}
