//! [`TableStore`]: a persistent table = immutable base [`Segment`] + [`Wal`]
//! of appended row batches.
//!
//! The store keeps the *live* relation in memory as an ordinary [`Table`]
//! (base rows followed by every appended batch), so reads are exactly as
//! fast as the in-memory path — persistence changes durability, not the
//! scan representation. Appends write to the WAL first (fsync) and only
//! then extend the in-memory columns; a crash between the two is invisible
//! because reopen replays the WAL into the same state.
//!
//! Determinism contract: the in-memory table after `create` + N appends is
//! **bit-identical** (codes and dictionaries included) to the table
//! produced by `open` on the resulting directory, and to a from-scratch
//! load of the same rows through [`TableBuilder`] — all three intern values
//! in row-major first-observation order.

use crate::error::TableError;
use crate::segment::Segment;
use crate::source::{RowBatch, TableSource};
use crate::table::Table;
use crate::value::Value;
use crate::wal::{Wal, WalBatch};
use crate::Result;
use std::path::{Path, PathBuf};

/// Base segment file name inside a store directory.
pub const SEGMENT_FILE: &str = "base.seg";
/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// What recovery found when a store was opened.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Complete batches replayed from the WAL.
    pub batches_replayed: usize,
    /// Rows those batches contributed.
    pub rows_replayed: usize,
    /// Whether a torn tail was truncated away.
    pub truncated_tail: bool,
    /// Duplicate batch records skipped.
    pub duplicates_skipped: usize,
}

/// A persistent table rooted at a directory (`base.seg` + `wal.log`).
#[derive(Debug)]
pub struct TableStore {
    dir: PathBuf,
    table: Table,
    /// Row count of the base segment (rows before the first WAL batch).
    base_rows: usize,
    /// Appended batches in row order.
    batches: Vec<RowBatch>,
    wal: Wal,
    next_batch_id: u64,
    recovery: RecoveryReport,
}

impl TableStore {
    /// Creates a new store at `dir` (which must not already contain one)
    /// from an initial table: writes the base segment and an empty WAL.
    pub fn create(dir: impl AsRef<Path>, table: &Table) -> Result<TableStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let seg_path = dir.join(SEGMENT_FILE);
        if seg_path.exists() {
            return Err(TableError::Storage(format!("store already exists at {}", dir.display())));
        }
        Segment::write(&seg_path, table)?;
        let wal = Wal::create(dir.join(WAL_FILE))?;
        Ok(TableStore {
            dir,
            table: table.clone(),
            base_rows: table.num_rows(),
            batches: Vec::new(),
            wal,
            next_batch_id: 1,
            recovery: RecoveryReport::default(),
        })
    }

    /// Opens the store at `dir`: loads and verifies the base segment, then
    /// replays the WAL (running crash recovery — see [`crate::wal`]).
    pub fn open(dir: impl AsRef<Path>) -> Result<TableStore> {
        let dir = dir.as_ref().to_path_buf();
        let segment = Segment::open(dir.join(SEGMENT_FILE))?;
        let mut table = segment.into_table();
        let base_rows = table.num_rows();
        let ncols = table.num_columns();
        let (wal, scan) = Wal::open(dir.join(WAL_FILE), ncols)?;
        let mut batches = Vec::with_capacity(scan.batches.len());
        let mut rows_replayed = 0usize;
        let mut next_batch_id = 1u64;
        for WalBatch { id, rows } in &scan.batches {
            let start = table.num_rows();
            apply_rows(&mut table, rows)?;
            batches.push(RowBatch { id: *id, rows: start..table.num_rows() });
            rows_replayed += rows.len();
            next_batch_id = next_batch_id.max(id + 1);
        }
        let recovery = RecoveryReport {
            batches_replayed: scan.batches.len(),
            rows_replayed,
            truncated_tail: scan.truncated_tail,
            duplicates_skipped: scan.duplicates_skipped,
        };
        Ok(TableStore { dir, table, base_rows, batches, wal, next_batch_id, recovery })
    }

    /// Whether `dir` holds a store (has a base segment).
    pub fn exists(dir: impl AsRef<Path>) -> bool {
        dir.as_ref().join(SEGMENT_FILE).is_file()
    }

    /// Appends one batch of rows (row-major values; each row must have the
    /// store's column count). The batch is durable (WAL record fsynced)
    /// before the in-memory table is extended. Returns the new batch.
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) -> Result<RowBatch> {
        let ncols = self.table.num_columns();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(TableError::LengthMismatch {
                    expected: ncols,
                    actual: row.len(),
                    column: format!("appended row {i}"),
                });
            }
        }
        let id = self.next_batch_id;
        self.wal.append(id, rows, ncols)?;
        self.next_batch_id += 1;
        let start = self.table.num_rows();
        apply_rows(&mut self.table, rows)?;
        let batch = RowBatch { id, rows: start..self.table.num_rows() };
        self.batches.push(batch.clone());
        Ok(batch)
    }

    /// Appends every row of `batch`, matching columns **by name** against
    /// the store schema (order may differ; extra or missing columns are an
    /// error).
    pub fn append_table(&mut self, batch: &Table) -> Result<RowBatch> {
        let ncols = self.table.num_columns();
        if batch.num_columns() != ncols {
            return Err(TableError::Storage(format!(
                "appended table has {} columns, store has {ncols}",
                batch.num_columns()
            )));
        }
        // Map store column i -> batch column index.
        let mut mapping = Vec::with_capacity(ncols);
        for field in self.table.schema().fields() {
            mapping.push(batch.schema().try_index_of(field.name())?);
        }
        let mut rows = Vec::with_capacity(batch.num_rows());
        for r in 0..batch.num_rows() {
            let row: Vec<Value> =
                mapping.iter().map(|&c| batch.get(r, c).unwrap_or(Value::Null)).collect();
            rows.push(row);
        }
        self.append_rows(&rows)
    }

    /// Folds every WAL batch into a fresh base segment and resets the WAL.
    /// Batch identity is intentionally forgotten: after compaction the
    /// whole relation is one base batch again.
    pub fn compact(&mut self) -> Result<()> {
        Segment::write(self.dir.join(SEGMENT_FILE), &self.table)?;
        self.wal.reset()?;
        self.base_rows = self.table.num_rows();
        self.batches.clear();
        Ok(())
    }

    /// The live relation (base + all appended batches).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rows in the base segment.
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }

    /// What recovery found when this store was opened (all-default for a
    /// freshly created store).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Appended batches currently sitting in the WAL.
    pub fn wal_batches(&self) -> &[RowBatch] {
        &self.batches
    }
}

/// Pushes rows into the table's columns in row-major order — the single
/// interning order every path (create, append, replay, from-scratch build)
/// shares, which is what makes recovery bit-identical.
fn apply_rows(table: &mut Table, rows: &[Vec<Value>]) -> Result<()> {
    table.append_rows(rows)
}

impl TableSource for TableStore {
    fn as_table(&self) -> &Table {
        &self.table
    }

    fn batches(&self) -> Vec<RowBatch> {
        let mut out = Vec::with_capacity(1 + self.batches.len());
        out.push(RowBatch { id: 0, rows: 0..self.base_rows });
        out.extend(self.batches.iter().cloned());
        out
    }

    fn source_kind(&self) -> &'static str {
        "store"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("guardrail_store_tests").join(name);
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn base() -> Table {
        Table::from_csv_str("zip,city\n94704,Berkeley\n97201,Portland\n").unwrap()
    }

    fn rows(n: usize, tag: &str) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| vec![Value::Int(90000 + i as i64), Value::from(format!("{tag}{i}"))])
            .collect()
    }

    #[test]
    fn create_append_reopen_is_bit_identical() {
        let d = dir("reopen");
        let mut store = TableStore::create(&d, &base()).unwrap();
        store.append_rows(&rows(3, "a")).unwrap();
        store.append_rows(&rows(2, "b")).unwrap();
        let live = store.table().clone();
        drop(store);
        let reopened = TableStore::open(&d).unwrap();
        assert_eq!(reopened.table(), &live);
        assert_eq!(reopened.recovery().batches_replayed, 2);
        assert_eq!(reopened.recovery().rows_replayed, 5);
        assert!(!reopened.recovery().truncated_tail);
        assert_eq!(
            reopened.batches(),
            vec![
                RowBatch { id: 0, rows: 0..2 },
                RowBatch { id: 1, rows: 2..5 },
                RowBatch { id: 2, rows: 5..7 },
            ]
        );
    }

    #[test]
    fn store_matches_from_scratch_builder_load() {
        let d = dir("scratch");
        let mut store = TableStore::create(&d, &base()).unwrap();
        store.append_rows(&rows(4, "x")).unwrap();
        // Build the same relation in one pass.
        let mut builder = TableBuilder::new(vec!["zip".into(), "city".into()]);
        for r in 0..base().num_rows() {
            builder.push_row(base().row_owned(r).unwrap().into_values()).unwrap();
        }
        for row in rows(4, "x") {
            builder.push_row(row).unwrap();
        }
        let scratch = builder.finish().unwrap();
        assert_eq!(store.table(), &scratch, "append interning matches builder interning");
    }

    #[test]
    fn append_is_durable_before_memory() {
        let d = dir("durable");
        let mut store = TableStore::create(&d, &base()).unwrap();
        store.append_rows(&rows(1, "a")).unwrap();
        // Simulate a crash: drop without compaction, reopen from disk only.
        drop(store);
        let store = TableStore::open(&d).unwrap();
        assert_eq!(store.num_rows(), 3);
    }

    #[test]
    fn compact_folds_wal_into_segment() {
        let d = dir("compact");
        let mut store = TableStore::create(&d, &base()).unwrap();
        store.append_rows(&rows(3, "a")).unwrap();
        store.compact().unwrap();
        assert_eq!(store.batches().len(), 1, "one base batch after compaction");
        assert_eq!(store.base_rows(), 5);
        let live = store.table().clone();
        drop(store);
        let reopened = TableStore::open(&d).unwrap();
        assert_eq!(reopened.table(), &live);
        assert_eq!(reopened.recovery().batches_replayed, 0, "wal is empty after compaction");
    }

    #[test]
    fn append_table_maps_columns_by_name() {
        let d = dir("byname");
        let mut store = TableStore::create(&d, &base()).unwrap();
        // Reversed column order must still land in the right columns.
        let batch = Table::from_csv_str("city,zip\nOakland,94601\n").unwrap();
        store.append_table(&batch).unwrap();
        assert_eq!(store.table().get(2, 0), Some(Value::Int(94601)));
        assert_eq!(store.table().get(2, 1), Some(Value::from("Oakland")));
    }

    #[test]
    fn ragged_append_is_rejected_without_side_effects() {
        let d = dir("ragged");
        let mut store = TableStore::create(&d, &base()).unwrap();
        let err = store.append_rows(&[vec![Value::Int(1)]]).unwrap_err();
        assert!(matches!(err, TableError::LengthMismatch { .. }));
        assert_eq!(store.num_rows(), 2, "failed append leaves the store untouched");
        drop(store);
        assert_eq!(TableStore::open(&d).unwrap().num_rows(), 2);
    }

    #[test]
    fn create_refuses_to_clobber() {
        let d = dir("clobber");
        let _ = TableStore::create(&d, &base()).unwrap();
        assert!(TableStore::create(&d, &base()).is_err());
        assert!(TableStore::exists(&d));
        assert!(!TableStore::exists(d.join("nope")));
    }
}
