//! Cell values.

use std::cmp::Ordering;
use std::fmt;

/// A single cell value in a table.
///
/// The DSL's `Literal` production (`String ∪ Number ∪ Boolean`, Fig. 2 of the
/// paper) maps directly onto this enum, with `Null` added to represent missing
/// data and the `coerce` error-handling scheme's NaN-like placeholder.
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing / coerced value.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal. `NaN` is normalized to [`Value::Null`] on
    /// construction via [`Value::float`].
    Float(f64),
    /// String literal.
    Str(String),
}

impl Value {
    /// Builds a float value, normalizing `NaN` to `Null` so that equality and
    /// hashing stay total.
    pub fn float(f: f64) -> Self {
        if f.is_nan() {
            Value::Null
        } else {
            Value::Float(f)
        }
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Booleans read as 0/1 so that
    /// aggregate queries like `AVG(CASE WHEN ... THEN 1 ELSE 0 END)` work over
    /// any encoding.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.parse::<f64>().ok(),
            Value::Null => None,
        }
    }

    /// Integer view of the value, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// String view of the value, without converting other types.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a raw CSV token into the most specific value type.
    ///
    /// Empty strings and the common NA spellings become `Null`; `true`/`false`
    /// become booleans; integer- and float-shaped tokens become numbers;
    /// everything else stays a string.
    pub fn parse_token(token: &str) -> Self {
        let t = token.trim();
        if t.is_empty() || t.eq_ignore_ascii_case("na") || t.eq_ignore_ascii_case("nan") || t == "?"
        {
            return Value::Null;
        }
        if t.eq_ignore_ascii_case("true") {
            return Value::Bool(true);
        }
        if t.eq_ignore_ascii_case("false") {
            return Value::Bool(false);
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::float(f);
        }
        Value::Str(t.to_string())
    }

    /// A stable discriminant used for cross-type ordering.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats compare numerically
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equal; hash every
            // numeric through its f64 bit pattern (NaN is excluded by
            // `Value::float`).
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if a.type_rank() == 2 && b.type_rank() == 2 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn parse_token_types() {
        assert_eq!(Value::parse_token("42"), Value::Int(42));
        assert_eq!(Value::parse_token("4.5"), Value::Float(4.5));
        assert_eq!(Value::parse_token("true"), Value::Bool(true));
        assert_eq!(Value::parse_token("FALSE"), Value::Bool(false));
        assert_eq!(Value::parse_token("abc"), Value::from("abc"));
        assert_eq!(Value::parse_token(""), Value::Null);
        assert_eq!(Value::parse_token("NA"), Value::Null);
        assert_eq!(Value::parse_token("?"), Value::Null);
    }

    #[test]
    fn nan_normalizes_to_null() {
        assert_eq!(Value::float(f64::NAN), Value::Null);
        assert_eq!(Value::parse_token("NaN"), Value::Null);
    }

    #[test]
    fn int_float_equality_and_hash_consistency() {
        let i = Value::Int(3);
        let f = Value::Float(3.0);
        assert_eq!(i, f);
        assert_eq!(hash_of(&i), hash_of(&f));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = vec![
            Value::from("b"),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
            Value::from("a"),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(2));
        assert_eq!(vals[4], Value::from("a"));
        assert_eq!(vals[5], Value::from("b"));
    }

    #[test]
    fn as_f64_coercions() {
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::from("2.5").as_f64(), Some(2.5));
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::from("xyz").as_f64(), None);
    }
}
