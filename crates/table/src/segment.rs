//! The on-disk columnar segment format.
//!
//! A segment is the immutable base of a persistent table: one file holding
//! every column's dictionary page followed by its packed code page, closed
//! by a checksummed footer. The layout is deliberately *mmap-able* — code
//! pages are contiguous fixed-width `u32` little-endian arrays whose
//! absolute file offsets are recorded in a directory, so a zero-copy reader
//! can map the file and slice pages directly. This crate's reader stays
//! within `#![forbid(unsafe_code)]` and loads pages through `std::fs`
//! instead; the format does not care which way it is scanned.
//!
//! ```text
//! +------------------+  magic "GRSEG001"
//! | header           |  ncols: u32, nrows: u64
//! +------------------+
//! | column 0         |  name (u16 len + utf8)
//! |   dict page      |  nvalues: u32, tagged values in code order
//! |   code page      |  nrows × u32 LE   (NULL_CODE for null cells)
//! | column 1 ...     |
//! +------------------+
//! | directory        |  ncols × u64 LE: absolute offset of each code page
//! +------------------+
//! | footer           |  checksum64 of all preceding bytes: u64 LE
//! |                  |  magic "GRSEGEND"
//! +------------------+
//! ```
//!
//! Dictionary pages store values in **code order**, so reopening a segment
//! reproduces the exact code assignment of the table that wrote it —
//! dictionary determinism is load-bearing for everything downstream (the
//! decision-table engine compiles literal codes, sufficient statistics pack
//! codes into mixed-radix keys).

use crate::codec::{checksum64, get_value, put_u16, put_u32, put_u64, put_value, Cursor};
use crate::column::Column;
use crate::dictionary::{Dictionary, NULL_CODE};
use crate::error::TableError;
use crate::source::TableSource;
use crate::table::Table;
use crate::Result;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC_HEAD: &[u8; 8] = b"GRSEG001";
const MAGIC_TAIL: &[u8; 8] = b"GRSEGEND";
/// Footer = checksum (8) + tail magic (8).
const FOOTER_LEN: usize = 16;

fn corrupt(path: &Path, message: impl Into<String>) -> TableError {
    TableError::Storage(format!("segment {}: {}", path.display(), message.into()))
}

/// Serializes `table` into the segment byte format.
pub(crate) fn encode_segment(table: &Table) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_HEAD);
    put_u32(&mut out, table.num_columns() as u32);
    put_u64(&mut out, table.num_rows() as u64);
    let mut code_offsets = Vec::with_capacity(table.num_columns());
    for (field, col) in table.schema().fields().iter().zip(table.columns()) {
        let name = field.name().as_bytes();
        put_u16(&mut out, name.len() as u16);
        out.extend_from_slice(name);
        let dict = col.dictionary();
        put_u32(&mut out, dict.len() as u32);
        for value in dict.values() {
            put_value(&mut out, value);
        }
        code_offsets.push(out.len() as u64);
        for &code in col.codes() {
            put_u32(&mut out, code);
        }
    }
    for off in code_offsets {
        put_u64(&mut out, off);
    }
    let sum = checksum64(&out);
    put_u64(&mut out, sum);
    out.extend_from_slice(MAGIC_TAIL);
    out
}

/// Decodes segment bytes back into a table, verifying magic and checksum.
pub(crate) fn decode_segment(bytes: &[u8], path: &Path) -> Result<Table> {
    if bytes.len() < MAGIC_HEAD.len() + FOOTER_LEN || &bytes[..8] != MAGIC_HEAD {
        return Err(corrupt(path, "missing or truncated header"));
    }
    let body_len = bytes.len() - FOOTER_LEN;
    if &bytes[body_len + 8..] != MAGIC_TAIL {
        return Err(corrupt(path, "missing footer magic (torn write?)"));
    }
    let stored = u64::from_le_bytes(bytes[body_len..body_len + 8].try_into().unwrap());
    let actual = checksum64(&bytes[..body_len]);
    if stored != actual {
        return Err(corrupt(path, format!("checksum mismatch ({stored:#x} != {actual:#x})")));
    }

    let mut cur = Cursor::new(&bytes[8..body_len], "segment");
    let ncols = cur.u32()? as usize;
    let nrows = cur.u64()? as usize;
    let mut named: Vec<(String, Column)> = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name_len = cur.u16()? as usize;
        let name = cur.str(name_len)?;
        let dict_len = cur.u32()? as usize;
        let mut dict = Dictionary::new();
        for code in 0..dict_len {
            let value = get_value(&mut cur)?;
            let assigned = dict.encode(value);
            if assigned as usize != code {
                return Err(corrupt(
                    path,
                    format!("dictionary page of {name:?} is not in code order"),
                ));
            }
        }
        let mut codes = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let code = cur.u32()?;
            if code != NULL_CODE && code as usize >= dict_len {
                return Err(corrupt(path, format!("code {code} out of dictionary in {name:?}")));
            }
            codes.push(code);
        }
        named.push((name, Column::from_parts(codes, dict)));
    }
    // Directory: one offset per column; validated for monotonicity only —
    // a slicing reader would use these, the sequential path already has
    // everything it needs.
    let mut prev = 0u64;
    for _ in 0..ncols {
        let off = cur.u64()?;
        if off < prev || off as usize > body_len {
            return Err(corrupt(path, "code-page directory out of order"));
        }
        prev = off;
    }
    if cur.remaining() != 0 {
        return Err(corrupt(path, format!("{} trailing bytes after directory", cur.remaining())));
    }
    if ncols == 0 {
        return Err(corrupt(path, "segment has no columns"));
    }
    Table::from_columns(named)
}

/// An immutable, checksum-verified on-disk segment.
///
/// Opening a segment loads its columns into memory (dictionary pages decode
/// into [`Dictionary`]s, code pages into packed `Vec<u32>`), after which it
/// serves the same zero-copy [`TableSource`] view an in-memory table does.
#[derive(Debug, Clone)]
pub struct Segment {
    table: Table,
    path: PathBuf,
}

impl Segment {
    /// Writes `table` as a segment at `path` (atomically: temp file +
    /// rename) and fsyncs before the rename so a crash never leaves a
    /// half-written segment under the final name.
    pub fn write(path: impl AsRef<Path>, table: &Table) -> Result<()> {
        let path = path.as_ref();
        let bytes = encode_segment(table);
        let tmp = path.with_extension("seg.tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Opens and verifies the segment at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Segment> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path)?;
        let table = decode_segment(&bytes, &path)?;
        Ok(Segment { table, path })
    }

    /// The segment's columnar view.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Consumes the segment, yielding the owned table.
    pub fn into_table(self) -> Table {
        self.table
    }

    /// Where the segment lives on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TableSource for Segment {
    fn as_table(&self) -> &Table {
        &self.table
    }

    fn source_kind(&self) -> &'static str {
        "segment"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("guardrail_segment_tests").join(name);
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn mixed_table() -> Table {
        Table::from_csv_str("city,pop,rate,flag\nBerkeley,120000,0.5,true\nPortland,650000,1.25,false\n,,,\nBerkeley,120000,0.5,true\n").unwrap()
    }

    #[test]
    fn roundtrip_preserves_codes_and_dictionaries() {
        let d = dir("roundtrip");
        let path = d.join("base.seg");
        let t = mixed_table();
        Segment::write(&path, &t).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.table(), &t, "codes and dictionaries are bit-identical");
        assert_eq!(seg.source_kind(), "segment");
        assert_eq!(seg.table().get(2, 0), Some(Value::Null));
    }

    #[test]
    fn flipping_any_byte_is_detected() {
        let d = dir("corrupt");
        let path = d.join("base.seg");
        Segment::write(&path, &mixed_table()).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip a byte in the header, the middle, and the checksum itself.
        for &at in &[3usize, clean.len() / 2, clean.len() - 12] {
            let mut bad = clean.clone();
            bad[at] ^= 0xff;
            std::fs::write(&path, &bad).unwrap();
            assert!(Segment::open(&path).is_err(), "corruption at byte {at} must be detected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let d = dir("truncate");
        let path = d.join("base.seg");
        Segment::write(&path, &mixed_table()).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for cut in [0, 1, 7, clean.len() / 2, clean.len() - 1] {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(Segment::open(&path).is_err(), "truncation to {cut} bytes must be detected");
        }
    }

    #[test]
    fn write_is_atomic_no_tmp_left_behind() {
        let d = dir("atomic");
        let path = d.join("base.seg");
        Segment::write(&path, &mixed_table()).unwrap();
        assert!(path.exists());
        assert!(!d.join("base.seg.tmp").exists());
    }
}
