//! Columnar table engine for Guardrail.
//!
//! This crate is the dataframe substrate that the rest of the workspace builds
//! on. It plays the role pandas plays in the paper's reference implementation:
//! it loads relations from CSV, stores them column-major, and exposes typed
//! row/column views to the statistics, synthesis, and query layers.
//!
//! # Representation
//!
//! Every column is **dictionary encoded**: cell values are stored as `u32`
//! codes into a per-column [`Dictionary`] of distinct [`Value`]s. Guardrail's
//! workloads are dominated by categorical equality — contingency tables for
//! conditional-independence tests, partition refinement for FD discovery, and
//! `IF a = l` conditions in the DSL — so uniform O(1) code comparison is the
//! right trade-off, and it mirrors how analytical engines encode low-cardinality
//! string columns.
//!
//! # Example
//!
//! ```
//! use guardrail_table::{Table, Value};
//!
//! let csv = "city,state\nBerkeley,CA\nPortland,OR\nBerkeley,CA\n";
//! let table = Table::from_csv_str(csv).unwrap();
//! assert_eq!(table.num_rows(), 3);
//! assert_eq!(table.column(0).unwrap().distinct_count(), 2);
//! assert_eq!(table.get(0, 0), Some(Value::from("Berkeley")));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod codec;
pub mod column;
pub mod csv;
pub mod dictionary;
pub mod error;
pub mod row;
pub mod schema;
pub mod segment;
pub mod source;
pub mod split;
pub mod store;
pub mod table;
pub mod value;
pub mod wal;

pub use column::Column;
pub use csv::CsvBatchReader;
pub use dictionary::{Code, Dictionary, NULL_CODE};
pub use error::TableError;
pub use row::{Row, RowView};
pub use schema::{DataType, Field, Schema};
pub use segment::Segment;
pub use source::{RowBatch, TableSource};
pub use split::SplitSpec;
pub use store::{RecoveryReport, TableStore};
pub use table::{Table, TableBuilder};
pub use value::Value;
pub use wal::{Wal, WalBatch};

/// Convenient `Result` alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TableError>;
