//! Row views and owned rows.

use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use std::fmt;

/// A borrowed view of one table row.
///
/// In DSL terms a row is a *program state* `t`; the interpreter reads
/// attribute values through this view.
#[derive(Clone, Copy)]
pub struct RowView<'a> {
    table: &'a Table,
    row: usize,
}

impl<'a> RowView<'a> {
    pub(crate) fn new(table: &'a Table, row: usize) -> Self {
        Self { table, row }
    }

    /// Index of this row in its table.
    pub fn index(&self) -> usize {
        self.row
    }

    /// Value of the column at `col`.
    pub fn get(&self, col: usize) -> Option<Value> {
        self.table.get(self.row, col)
    }

    /// Value of the named column.
    pub fn get_by_name(&self, name: &str) -> Option<Value> {
        self.table.schema().index_of(name).and_then(|i| self.get(i))
    }

    /// Dictionary code of the column at `col`.
    pub fn code(&self, col: usize) -> u32 {
        self.table.column(col).expect("column in range").code(self.row)
    }

    /// Materializes this view into an owned [`Row`].
    pub fn to_owned_row(&self) -> Row {
        self.table.row_owned(self.row).expect("row in range")
    }

    /// The table this view borrows.
    pub fn table(&self) -> &'a Table {
        self.table
    }
}

impl fmt::Debug for RowView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (i, field) in self.table.schema().fields().iter().enumerate() {
            map.entry(&field.name(), &self.get(i).unwrap_or(Value::Null));
        }
        map.finish()
    }
}

/// An owned row: a schema plus one value per field.
///
/// Used as the mutable program state for [`guardrail-dsl`]'s interpreter
/// (rows are updated in place by `THEN a ← l` assignments) and as the unit of
/// data flowing through the SQL executor.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    schema: Schema,
    values: Vec<Value>,
}

impl Row {
    /// Creates a row. The value count must match the schema length.
    pub fn new(schema: Schema, values: Vec<Value>) -> Self {
        assert_eq!(schema.len(), values.len(), "row arity must match schema");
        Self { schema, values }
    }

    /// The row's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Value at position `col`.
    pub fn get(&self, col: usize) -> Option<&Value> {
        self.values.get(col)
    }

    /// Value of the named column.
    pub fn get_by_name(&self, name: &str) -> Option<&Value> {
        self.schema.index_of(name).and_then(|i| self.values.get(i))
    }

    /// Overwrites the value at `col`.
    pub fn set(&mut self, col: usize, value: Value) {
        self.values[col] = value;
    }

    /// Overwrites the named column's value; `false` if the name is unknown.
    pub fn set_by_name(&mut self, name: &str, value: Value) -> bool {
        match self.schema.index_of(name) {
            Some(i) => {
                self.values[i] = value;
                true
            }
            None => false,
        }
    }

    /// All values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the row, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn table() -> Table {
        let mut b = TableBuilder::new(vec!["a".into(), "b".into()]);
        b.push_row(vec![Value::Int(1), Value::from("x")]).unwrap();
        b.push_row(vec![Value::Int(2), Value::from("y")]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn view_reads() {
        let t = table();
        let r = t.row(1).unwrap();
        assert_eq!(r.index(), 1);
        assert_eq!(r.get(0), Some(Value::Int(2)));
        assert_eq!(r.get_by_name("b"), Some(Value::from("y")));
        assert_eq!(r.get_by_name("zz"), None);
        assert!(t.row(5).is_none());
    }

    #[test]
    fn owned_row_mutation() {
        let t = table();
        let mut r = t.row_owned(0).unwrap();
        assert_eq!(r.get_by_name("a"), Some(&Value::Int(1)));
        assert!(r.set_by_name("a", Value::Int(9)));
        assert_eq!(r.get(0), Some(&Value::Int(9)));
        assert!(!r.set_by_name("zz", Value::Null));
        // original table untouched
        assert_eq!(t.get(0, 0), Some(Value::Int(1)));
    }

    #[test]
    fn debug_format_names_columns() {
        let t = table();
        let s = format!("{:?}", t.row(0).unwrap());
        assert!(s.contains("\"a\""), "{s}");
    }
}
