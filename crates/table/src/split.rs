//! Deterministic train/test splitting.

use crate::table::Table;

/// Specification of a two-way split.
///
/// Splitting is deterministic given the `seed`: we shuffle row indices with a
/// seeded xorshift permutation rather than depending on `rand` here, keeping
/// the table crate dependency-free and the experiment pipeline reproducible.
#[derive(Debug, Clone, Copy)]
pub struct SplitSpec {
    /// Fraction of rows that go to the first (train) table, in `[0, 1]`.
    pub train_fraction: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SplitSpec {
    fn default() -> Self {
        Self { train_fraction: 0.7, seed: 0x5EED }
    }
}

impl SplitSpec {
    /// Creates a spec with the given fraction and seed.
    pub fn new(train_fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&train_fraction), "fraction must be in [0,1]");
        Self { train_fraction, seed }
    }

    /// Splits `table` into `(train, test)`.
    pub fn split(&self, table: &Table) -> (Table, Table) {
        let n = table.num_rows();
        let mut indices: Vec<usize> = (0..n).collect();
        shuffle(&mut indices, self.seed);
        let cut = ((n as f64) * self.train_fraction).round() as usize;
        let cut = cut.min(n);
        let (train_idx, test_idx) = indices.split_at(cut);
        (table.take(train_idx), table.take(test_idx))
    }
}

/// Fisher–Yates with a split-mix/xorshift PRNG.
fn shuffle(indices: &mut [usize], seed: u64) {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..indices.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        indices.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::value::Value;

    fn table(n: usize) -> Table {
        let mut b = TableBuilder::new(vec!["i".into()]);
        for i in 0..n {
            b.push_row(vec![Value::Int(i as i64)]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn split_partitions_rows() {
        let t = table(100);
        let (train, test) = SplitSpec::new(0.7, 1).split(&t);
        assert_eq!(train.num_rows(), 70);
        assert_eq!(test.num_rows(), 30);
        let mut seen: Vec<i64> = train
            .column(0)
            .unwrap()
            .iter()
            .chain(test.column(0).unwrap().iter())
            .map(|v| v.as_i64().unwrap())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_given_seed() {
        let t = table(50);
        let (a1, _) = SplitSpec::new(0.5, 42).split(&t);
        let (a2, _) = SplitSpec::new(0.5, 42).split(&t);
        let v1: Vec<_> = a1.column(0).unwrap().iter().collect();
        let v2: Vec<_> = a2.column(0).unwrap().iter().collect();
        assert_eq!(v1, v2);
        let (b1, _) = SplitSpec::new(0.5, 43).split(&t);
        let v3: Vec<_> = b1.column(0).unwrap().iter().collect();
        assert_ne!(v1, v3);
    }

    #[test]
    fn degenerate_fractions() {
        let t = table(10);
        let (train, test) = SplitSpec::new(1.0, 7).split(&t);
        assert_eq!(train.num_rows(), 10);
        assert_eq!(test.num_rows(), 0);
        let (train, test) = SplitSpec::new(0.0, 7).split(&t);
        assert_eq!(train.num_rows(), 0);
        assert_eq!(test.num_rows(), 10);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_panics() {
        SplitSpec::new(1.5, 0);
    }
}
