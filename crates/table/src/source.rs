//! The [`TableSource`] trait: the columnar access seam shared by in-memory
//! tables and persistent stores.
//!
//! Synthesis, the vectorized detect engine, and the server all consume the
//! same columnar view — a [`Schema`] plus per-column dictionary codes — but
//! until this trait existed they were hard-wired to the owned in-memory
//! [`Table`]. `TableSource` abstracts *provenance*: an implementor promises a
//! zero-copy columnar view ([`TableSource::as_table`]) plus the row-batch
//! structure of how those rows arrived ([`TableSource::batches`]). In-memory
//! tables are a single batch; a persistent [`crate::TableStore`] exposes its
//! base segment followed by every write-ahead-log batch, which is what lets
//! incremental consumers (batch detect, per-batch sufficient statistics)
//! process only the rows that changed.
//!
//! Consumers should be generic over `S: TableSource + ?Sized` so call sites
//! holding a `&Table`, a `&Segment`, or a `&TableStore` all work unchanged.

use crate::schema::Schema;
use crate::table::Table;
use crate::{Code, Dictionary};
use std::ops::Range;

/// One contiguous run of rows that arrived together.
///
/// Batches partition `0..num_rows` in row order: the base relation first,
/// then each appended batch in append order. Batch ids are stable across
/// reopen (they are the WAL batch ids; the base is id 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBatch {
    /// Stable batch id (0 = base relation, WAL ids for appended batches).
    pub id: u64,
    /// Half-open row range this batch occupies in the full relation.
    pub rows: Range<usize>,
}

impl RowBatch {
    /// Rows in this batch.
    pub fn len(&self) -> usize {
        self.rows.end - self.rows.start
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A source of dictionary-encoded columnar rows.
///
/// The contract every implementor must uphold:
///
/// - [`as_table`](TableSource::as_table) is a **zero-copy** borrow of the
///   full relation; its dictionary code assignment is deterministic for a
///   given ingestion history (first-observation order).
/// - [`batches`](TableSource::batches) partitions `0..num_rows` in row
///   order, and appends only ever add batches at the end — existing rows
///   and their codes never move or change under append.
pub trait TableSource {
    /// Zero-copy columnar view of the full relation.
    fn as_table(&self) -> &Table;

    /// Row-batch boundaries in row order (see [`RowBatch`]). The default is
    /// a single base batch covering every row.
    fn batches(&self) -> Vec<RowBatch> {
        vec![RowBatch { id: 0, rows: 0..self.num_rows() }]
    }

    /// Short provenance label for diagnostics (`"memory"`, `"segment"`,
    /// `"store"`).
    fn source_kind(&self) -> &'static str {
        "memory"
    }

    /// The schema.
    fn schema(&self) -> &Schema {
        self.as_table().schema()
    }

    /// Total rows across all batches.
    fn num_rows(&self) -> usize {
        self.as_table().num_rows()
    }

    /// Number of columns.
    fn num_columns(&self) -> usize {
        self.as_table().num_columns()
    }

    /// The packed dictionary codes of column `col`.
    fn column_codes(&self, col: usize) -> Option<&[Code]> {
        self.as_table().column(col).map(|c| c.codes())
    }

    /// The dictionary of column `col`.
    fn dictionary(&self, col: usize) -> Option<&Dictionary> {
        self.as_table().column(col).map(|c| c.dictionary())
    }

    /// Rows in every batch after the first `keep` batches — the "changed
    /// tail" an incremental consumer still has to process once it has seen
    /// `keep` batches.
    fn rows_after_batch(&self, keep: usize) -> Range<usize> {
        let batches = self.batches();
        let start = if keep == 0 {
            0
        } else {
            batches.get(keep - 1).map(|b| b.rows.end).unwrap_or(self.num_rows())
        };
        start..self.num_rows()
    }
}

impl TableSource for Table {
    fn as_table(&self) -> &Table {
        self
    }
}

// A reference to a source is itself a source, so `&dyn TableSource` and
// nested generics both work without re-borrowing gymnastics.
impl<S: TableSource + ?Sized> TableSource for &S {
    fn as_table(&self) -> &Table {
        (**self).as_table()
    }

    fn batches(&self) -> Vec<RowBatch> {
        (**self).batches()
    }

    fn source_kind(&self) -> &'static str {
        (**self).source_kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_csv_str("a,b\n1,x\n2,y\n3,z\n").unwrap()
    }

    #[test]
    fn table_is_a_single_base_batch() {
        let t = sample();
        let batches = TableSource::batches(&t);
        assert_eq!(batches, vec![RowBatch { id: 0, rows: 0..3 }]);
        assert_eq!(TableSource::num_rows(&t), 3);
        assert_eq!(TableSource::num_columns(&t), 2);
        assert_eq!(t.source_kind(), "memory");
        assert!(std::ptr::eq(t.as_table(), &t), "as_table is zero-copy");
    }

    #[test]
    fn column_codes_match_the_table() {
        let t = sample();
        assert_eq!(TableSource::column_codes(&t, 0).unwrap(), t.column(0).unwrap().codes());
        assert!(TableSource::column_codes(&t, 9).is_none());
        assert_eq!(TableSource::dictionary(&t, 1).unwrap().len(), 3);
    }

    #[test]
    fn rows_after_batch_covers_the_tail() {
        let t = sample();
        assert_eq!(t.rows_after_batch(0), 0..3);
        assert_eq!(t.rows_after_batch(1), 3..3);
        assert_eq!(t.rows_after_batch(7), 3..3);
    }

    #[test]
    fn references_delegate() {
        let t = sample();
        let r: &dyn TableSource = &t;
        assert_eq!(TableSource::num_rows(&r), 3);
        assert_eq!(r.batches().len(), 1);
    }
}
