//! Pluggable event sinks.

use crate::event::Event;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

/// Where events go once the fast-path gate is open.
///
/// Implementations must be cheap enough to sit behind a hot loop at chunk
/// granularity and must tolerate concurrent `record` calls (the serving
/// path emits from worker threads).
pub trait Recorder: Send + Sync {
    /// Whether installing this recorder should arm the instrumentation
    /// fast path. The default is `true`; [`NoopRecorder`] answers `false`,
    /// which is what makes "Noop installed" indistinguishable from
    /// "nothing installed" on the hot path.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&self, event: Event);
}

/// Discards everything — and, via [`Recorder::enabled`], keeps the global
/// gate closed so instrumentation sites never even construct events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// An in-memory ring buffer of the most recent events. The CLI's
/// `--trace-out` drains one of these into a Chrome-trace file after the
/// run; tests use it to assert on emitted events.
#[derive(Debug)]
pub struct RingRecorder {
    buf: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: Mutex<u64>,
}

impl RingRecorder {
    /// A ring holding at most `capacity` events; older events are dropped
    /// first (and counted — see [`RingRecorder::dropped`]).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity: capacity.max(1),
            dropped: Mutex::new(0),
        }
    }

    /// Takes every buffered event, oldest first, leaving the ring empty.
    pub fn take(&self) -> Vec<Event> {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Recorder for RingRecorder {
    fn record(&self, event: Event) {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.capacity {
            buf.pop_front();
            *self.dropped.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        }
        buf.push_back(event);
    }
}

/// Streams each event as one JSONL line to a writer (a file, a pipe, a
/// `Vec<u8>` in tests). Lines use the shared flat-object schema of
/// [`Event::to_jsonl`].
pub struct JsonlRecorder {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder").finish_non_exhaustive()
    }
}

impl JsonlRecorder {
    /// Wraps `writer`; each event becomes one line. Write errors are
    /// swallowed — observability must never fail the observed pipeline.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self { writer: Mutex::new(writer) }
    }

    /// Opens (truncates) `path` and streams events to it.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let _ = self.writer.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: Event) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(w, "{}", event.to_jsonl());
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Duplicates every event to several recorders (e.g. a ring for the
/// Chrome-trace export plus a JSONL stream for archival).
#[derive(Default)]
pub struct FanoutRecorder {
    sinks: Vec<std::sync::Arc<dyn Recorder>>,
}

impl std::fmt::Debug for FanoutRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutRecorder").field("sinks", &self.sinks.len()).finish()
    }
}

impl FanoutRecorder {
    /// A fanout over `sinks` (order preserved per event).
    pub fn new(sinks: Vec<std::sync::Arc<dyn Recorder>>) -> Self {
        Self { sinks }
    }
}

impl Recorder for FanoutRecorder {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&self, event: Event) {
        for sink in &self.sinks {
            sink.record(event.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(value: u64) -> Event {
        Event::Counter { name: "c", tid: 1, value, t_ns: value }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = RingRecorder::with_capacity(3);
        for v in 0..5 {
            ring.record(counter(v));
        }
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u64> = ring
            .take()
            .into_iter()
            .map(|e| match e {
                Event::Counter { value, .. } => value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_recorder_writes_parseable_lines() {
        use std::sync::{Arc, Mutex};

        /// A `Write` handle tests can read back after the recorder flushes.
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let rec = JsonlRecorder::new(Box::new(shared.clone()));
        rec.record(Event::SpanStart { id: 1, parent: 0, tid: 1, name: "s", t_ns: 5 });
        rec.record(counter(9));
        rec.flush();
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::event::parse_jsonl_line(line).unwrap();
        }
    }

    #[test]
    fn fanout_duplicates_and_inherits_enablement() {
        let a = std::sync::Arc::new(RingRecorder::with_capacity(8));
        let b = std::sync::Arc::new(RingRecorder::with_capacity(8));
        let fan = FanoutRecorder::new(vec![a.clone(), b.clone()]);
        assert!(fan.enabled());
        fan.record(counter(1));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        let noop_only = FanoutRecorder::new(vec![std::sync::Arc::new(NoopRecorder)]);
        assert!(!noop_only.enabled());
    }
}
