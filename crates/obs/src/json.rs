//! A minimal, dependency-free JSON reader and string escaper.
//!
//! The workspace bans external dependencies (vendored subsets aside), so
//! the trace tooling — JSONL round-trip tests, the `trace_check` CI
//! validator, Chrome-trace inspection — needs its own parser. This is a
//! straightforward recursive-descent reader over the full JSON grammar,
//! sized for trace files rather than adversarial input (recursion depth is
//! bounded to keep hostile nesting from overflowing the stack).

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 128;

/// A parsed JSON value. Object members keep their document order (trace
/// events are order-sensitive in tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (as f64, like every JS consumer sees it).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match; `None` on other kinds).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included) — the same escaping the vendored criterion's JSON records use,
/// so both emitters stay parseable by [`parse`].
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are irrelevant to our emitters;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid; find the next char boundary).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Json::Str("a\nbA".into()));
        assert_eq!(
            parse(r#"[1, "two", [3]]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Str("two".into()),
                Json::Arr(vec![Json::Num(3.0)])
            ])
        );
        let obj = parse(r#"{"a": 1, "b": {"c": []}}"#).unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(obj.get("b").and_then(|b| b.get("c")).and_then(Json::as_arr), Some(&[][..]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}{}").is_err(), "trailing data");
        assert!(parse("nul").is_err());
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err(), "depth bound");
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode→";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Json::Str(nasty.into()));
    }

    #[test]
    fn parses_criterion_bench_records_with_the_same_parser() {
        // The shared-schema contract: bench JSONL lines are readable by the
        // trace tooling's parser.
        let line =
            r#"{"name":"detect/vector/1M","mean_ns":123456.7,"min_ns":120000.1,"samples":20}"#;
        let record = parse(line).unwrap();
        assert_eq!(record.get("name").and_then(Json::as_str), Some("detect/vector/1M"));
        assert_eq!(record.get("mean_ns").and_then(Json::as_num), Some(123456.7));
    }
}
