//! The human-facing pipeline report: a stage tree with wall times, work
//! metrics, and degradations.
//!
//! Unlike the event stream — which exists only while a [`crate::Recorder`]
//! is armed — the report is built *deterministically* by the pipeline from
//! its own stage timings and outcome counters, so library users always get
//! one from a fit, recorder or not. The CLI's `--report` flag prints it.

use std::fmt;

/// One pipeline stage: a name, its wall time, display-ready metrics, and
/// sub-stages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageReport {
    /// Stage name (matches the span name the stage emits when tracing).
    pub name: String,
    /// Wall-clock time spent in the stage, in nanoseconds.
    pub wall_ns: u64,
    /// `(key, rendered value)` pairs, in display order.
    pub metrics: Vec<(String, String)>,
    /// Nested sub-stages, in pipeline order.
    pub children: Vec<StageReport>,
}

impl StageReport {
    /// A stage named `name` with no time or metrics yet.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Self::default() }
    }

    /// Sets the stage's wall time.
    pub fn wall_ns(mut self, ns: u64) -> Self {
        self.wall_ns = ns;
        self
    }

    /// Appends a rendered metric.
    pub fn metric(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.metrics.push((key.into(), value.to_string()));
        self
    }

    /// Appends a sub-stage.
    pub fn child(mut self, child: StageReport) -> Self {
        self.children.push(child);
        self
    }
}

/// The whole run: top-level stages plus any degradations the governor
/// recorded. [`fmt::Display`] renders the tree the CLI prints under
/// `--report`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineReport {
    /// Top-level stages in pipeline order.
    pub stages: Vec<StageReport>,
    /// Rendered governor degradations (empty = every stage completed).
    pub degradations: Vec<String>,
}

impl PipelineReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a top-level stage.
    pub fn stage(mut self, stage: StageReport) -> Self {
        self.stages.push(stage);
        self
    }

    /// Whether no stage degraded.
    pub fn is_complete(&self) -> bool {
        self.degradations.is_empty()
    }

    /// Looks up a stage anywhere in the tree by name (first match,
    /// depth-first).
    pub fn find(&self, name: &str) -> Option<&StageReport> {
        fn walk<'a>(stages: &'a [StageReport], name: &str) -> Option<&'a StageReport> {
            for s in stages {
                if s.name == name {
                    return Some(s);
                }
                if let Some(hit) = walk(&s.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        walk(&self.stages, name)
    }
}

/// Renders nanoseconds as a right-aligned human duration.
fn fmt_wall(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn render(stage: &StageReport, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", stage.name);
    write!(f, "{label:<32} {:>10}", fmt_wall(stage.wall_ns))?;
    if !stage.metrics.is_empty() {
        let rendered: Vec<String> = stage.metrics.iter().map(|(k, v)| format!("{k}={v}")).collect();
        write!(f, "  {}", rendered.join(" "))?;
    }
    writeln!(f)?;
    for child in &stage.children {
        render(child, depth + 1, f)?;
    }
    Ok(())
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pipeline report")?;
        for stage in &self.stages {
            render(stage, 1, f)?;
        }
        if self.degradations.is_empty() {
            writeln!(f, "  degradations: none")
        } else {
            writeln!(f, "  degradations:")?;
            for d in &self.degradations {
                writeln!(f, "    {d}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineReport {
        PipelineReport::new()
            .stage(
                StageReport::new("synthesis")
                    .wall_ns(12_345_678)
                    .metric("work_units", 9000)
                    .child(
                        StageReport::new("structure_learning")
                            .wall_ns(8_000_000)
                            .metric("ci_cache_hit_rate", "63.2%"),
                    )
                    .child(StageReport::new("mec_enumeration").wall_ns(900).metric("dags", 2)),
            )
            .stage(StageReport::new("detect").wall_ns(2_500))
    }

    #[test]
    fn display_renders_tree_with_metrics_and_times() {
        let text = sample().to_string();
        assert!(text.starts_with("pipeline report\n"), "{text}");
        assert!(text.contains("synthesis"), "{text}");
        assert!(text.contains("12.35 ms"), "{text}");
        assert!(text.contains("ci_cache_hit_rate=63.2%"), "{text}");
        assert!(text.contains("dags=2"), "{text}");
        assert!(text.contains("900 ns"), "{text}");
        assert!(text.contains("2.5 µs"), "{text}");
        assert!(text.contains("degradations: none"), "{text}");
        // Children indent one level deeper than their parent.
        let synth_line = text.lines().find(|l| l.contains("synthesis")).unwrap();
        let child_line = text.lines().find(|l| l.contains("mec_enumeration")).unwrap();
        let lead = |s: &str| s.len() - s.trim_start().len();
        assert_eq!(lead(child_line), lead(synth_line) + 2);
    }

    #[test]
    fn degradations_render_and_flip_completeness() {
        let mut report = sample();
        assert!(report.is_complete());
        report.degradations.push("pc_skeleton: deadline expired after 120 work units".into());
        assert!(!report.is_complete());
        let text = report.to_string();
        assert!(text.contains("degradations:\n    pc_skeleton: deadline expired"), "{text}");
    }

    #[test]
    fn find_walks_the_tree() {
        let report = sample();
        assert_eq!(report.find("mec_enumeration").unwrap().wall_ns, 900);
        assert_eq!(report.find("detect").unwrap().wall_ns, 2_500);
        assert!(report.find("missing").is_none());
    }
}
