//! Zero-overhead-when-off tracing and metrics for the Guardrail pipeline.
//!
//! Every stage boundary of the pipeline — PC levels, MEC enumeration,
//! sketch fills, OptSMT, and the serving path's detect/rectify chunks —
//! brackets itself with a [`Span`] and attaches work-unit counters as span
//! arguments. Where the events go is decided once per process by installing
//! a [`Recorder`]:
//!
//! * [`NoopRecorder`] (the default) — recording stays **off**: the entire
//!   hot-path cost of an instrumentation site is one relaxed atomic load,
//!   and no span allocates. The repo's `tests/alloc_free.rs` pins hold with
//!   this recorder installed.
//! * [`RingRecorder`] — an in-memory ring buffer, drained after a run to
//!   build a Chrome-trace file ([`chrome_trace`]) or inspect events in
//!   tests.
//! * [`JsonlRecorder`] — streams one JSON object per event to a writer
//!   (the same flat-object schema as the bench harness's `CRITERION_JSON`
//!   lines, so traces and bench baselines can be post-processed with one
//!   parser — see [`json`]).
//!
//! ```
//! use guardrail_obs as obs;
//! use std::sync::Arc;
//!
//! let ring = Arc::new(obs::RingRecorder::with_capacity(1024));
//! obs::install(ring.clone());
//! {
//!     let mut span = obs::span("demo_stage");
//!     span.arg("work_units", 42);
//! } // span end recorded here
//! obs::uninstall();
//! let events = ring.take();
//! assert_eq!(events.len(), 2); // start + end
//! let trace = obs::chrome_trace(&events);
//! assert!(trace.contains("\"demo_stage\""));
//! ```
//!
//! # Overhead contract
//!
//! With the [`NoopRecorder`] installed (or nothing installed), every public
//! entry point below checks a single `AtomicBool` with `Ordering::Relaxed`
//! and returns. [`span`] hands back a disarmed guard whose `Vec` of
//! arguments is never allocated (`Vec::new` is allocation-free) and whose
//! `Drop` is a branch on a dead flag. No timestamps are taken, no
//! thread-locals touched, no locks acquired.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod recorder;
pub mod report;

pub use chrome::chrome_trace;
pub use event::{parse_jsonl_line, Event, ParsedEvent};
pub use recorder::{FanoutRecorder, JsonlRecorder, NoopRecorder, Recorder, RingRecorder};
pub use report::{PipelineReport, StageReport};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// The one-load fast-path gate. `install` keeps it in sync with the active
/// recorder's [`Recorder::enabled`] verdict, so a Noop install leaves every
/// instrumentation site on its single-atomic-load path.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic span ids, unique per process (0 is reserved for "disarmed" /
/// "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small dense thread ids for trace lanes (std's `ThreadId` is opaque).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's trace lane.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Open span ids, innermost last — gives every span its parent and
    /// guarantees begin/end events balance LIFO per thread (RAII).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn registry() -> &'static RwLock<Arc<dyn Recorder>> {
    static REGISTRY: OnceLock<RwLock<Arc<dyn Recorder>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Arc::new(NoopRecorder)))
}

/// Installs `recorder` as the process-global event sink and arms (or
/// disarms, for a [`NoopRecorder`]) the fast-path gate.
///
/// Instrumented library code never calls this: recording is an application
/// decision (the CLI's `--trace-out`, a test, a bench run). Installing is
/// not thread-safe *semantically* — events from concurrently running work
/// land in whichever recorder is current — so do it around a run, not
/// during one.
pub fn install(recorder: Arc<dyn Recorder>) {
    let enabled = recorder.enabled();
    *registry().write().unwrap_or_else(|e| e.into_inner()) = recorder;
    ENABLED.store(enabled, Ordering::SeqCst);
}

/// Restores the default [`NoopRecorder`], disarming the fast-path gate.
pub fn uninstall() {
    install(Arc::new(NoopRecorder));
}

/// Whether a recorder is armed. The only cost an instrumentation site pays
/// when recording is off.
#[inline(always)]
pub fn recording() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process's trace epoch (the first observability
/// call). Monotonic; shared by every event so traces line up across
/// threads.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn dispatch(event: Event) {
    let recorder = registry().read().unwrap_or_else(|e| e.into_inner()).clone();
    recorder.record(event);
}

/// An RAII span guard: records a begin event on creation (when recording)
/// and the matching end event — carrying any [`Span::arg`] attachments — on
/// drop. Disarmed spans (recording off) cost one branch in `Drop` and never
/// allocate.
#[must_use = "a span measures the scope it lives in; binding it to _ ends it immediately"]
#[derive(Debug)]
pub struct Span {
    /// 0 when disarmed.
    id: u64,
    name: &'static str,
    args: Vec<(&'static str, u64)>,
}

/// Opens a span named `name` under the innermost open span of this thread.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !recording() {
        return Span { id: 0, name, args: Vec::new() };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    let tid = TID.with(|t| *t);
    dispatch(Event::SpanStart { id, parent, tid, name, t_ns: now_ns() });
    Span { id, name, args: Vec::new() }
}

impl Span {
    /// Attaches a `key = value` argument to the span's end event (shown as
    /// span args in Perfetto). A no-op on a disarmed span.
    #[inline]
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.id != 0 {
            self.args.push((key, value));
        }
    }

    /// Whether this span is actually recording (useful to skip arg
    /// computations that are themselves costly).
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.id != 0
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // RAII makes LIFO the overwhelmingly common case; out-of-order
            // drops (spans moved across scopes) are still removed correctly.
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                stack.retain(|&open| open != self.id);
            }
        });
        let tid = TID.with(|t| *t);
        dispatch(Event::SpanEnd {
            id: self.id,
            tid,
            name: self.name,
            t_ns: now_ns(),
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Adds `delta` to the named process-global counter and emits an
/// [`Event::Counter`] sample carrying the new total. When recording is off
/// this is a single atomic load and return — the registry is not consulted.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !recording() {
        return;
    }
    count_slow(name, delta);
}

#[cold]
fn count_slow(name: &'static str, delta: u64) {
    let total = counter_cell(name).fetch_add(delta, Ordering::Relaxed) + delta;
    let tid = TID.with(|t| *t);
    dispatch(Event::Counter { name, tid, value: total, t_ns: now_ns() });
}

/// Adds `delta` to the named counter **whether or not a recorder is
/// armed**, returning the new total. When recording is on, an
/// [`Event::Counter`] sample is emitted too, so the same counter feeds
/// both a live metrics endpoint (via [`counter_value`] /
/// [`counters_snapshot`]) and an exported trace — one source of truth.
///
/// Unlike [`count`], this is *not* zero-overhead when off (it always pays
/// the registry update); use it only at request-rate boundaries (a serving
/// daemon's per-request outcome counters), never inside per-row hot loops.
pub fn count_always(name: &'static str, delta: u64) -> u64 {
    let total = counter_cell(name).fetch_add(delta, Ordering::Relaxed) + delta;
    if recording() {
        let tid = TID.with(|t| *t);
        dispatch(Event::Counter { name, tid, value: total, t_ns: now_ns() });
    }
    total
}

/// Current value of a named counter (0 if it was never touched).
pub fn counter_value(name: &str) -> u64 {
    let counters = counter_registry().read().unwrap_or_else(|e| e.into_inner());
    counters.iter().find(|(n, _)| *n == name).map(|(_, c)| c.load(Ordering::Relaxed)).unwrap_or(0)
}

/// Snapshot of every registered counter, in registration order.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    let counters = counter_registry().read().unwrap_or_else(|e| e.into_inner());
    counters.iter().map(|(n, c)| (*n, c.load(Ordering::Relaxed))).collect()
}

/// Zeroes every registered counter (test isolation between recorded runs).
pub fn reset_counters() {
    let counters = counter_registry().read().unwrap_or_else(|e| e.into_inner());
    for (_, c) in counters.iter() {
        c.store(0, Ordering::Relaxed);
    }
}

type CounterRegistry = RwLock<Vec<(&'static str, Arc<AtomicU64>)>>;

fn counter_registry() -> &'static CounterRegistry {
    static COUNTERS: OnceLock<CounterRegistry> = OnceLock::new();
    COUNTERS.get_or_init(|| RwLock::new(Vec::new()))
}

fn counter_cell(name: &'static str) -> Arc<AtomicU64> {
    {
        let counters = counter_registry().read().unwrap_or_else(|e| e.into_inner());
        if let Some((_, c)) = counters.iter().find(|(n, _)| *n == name) {
            return c.clone();
        }
    }
    let mut counters = counter_registry().write().unwrap_or_else(|e| e.into_inner());
    if let Some((_, c)) = counters.iter().find(|(n, _)| *n == name) {
        return c.clone();
    }
    let cell = Arc::new(AtomicU64::new(0));
    counters.push((name, cell.clone()));
    cell
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global recorder is process state; tests that arm it serialize.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disarmed_spans_are_inert() {
        let _guard = SERIAL.lock().unwrap();
        uninstall();
        assert!(!recording());
        let mut s = span("never_recorded");
        assert!(!s.is_armed());
        s.arg("ignored", 1);
        drop(s);
        count("ignored_counter", 5);
        assert_eq!(counter_value("ignored_counter"), 0);
    }

    #[test]
    fn ring_recorder_captures_nested_spans_and_counters() {
        let _guard = SERIAL.lock().unwrap();
        let ring = Arc::new(RingRecorder::with_capacity(64));
        install(ring.clone());
        {
            let mut outer = span("outer");
            outer.arg("outer_arg", 7);
            {
                let _inner = span("inner");
                count("events_seen", 3);
            }
        }
        uninstall();
        reset_counters();
        let events = ring.take();
        assert_eq!(events.len(), 5, "{events:?}");
        let (outer_id, inner_parent) = match (&events[0], &events[1]) {
            (
                Event::SpanStart { id, parent: 0, name: "outer", .. },
                Event::SpanStart { parent, name: "inner", .. },
            ) => (*id, *parent),
            other => panic!("unexpected prefix {other:?}"),
        };
        assert_eq!(inner_parent, outer_id, "inner span must nest under outer");
        assert!(matches!(&events[2], Event::Counter { name: "events_seen", value: 3, .. }));
        assert!(matches!(&events[3], Event::SpanEnd { name: "inner", .. }));
        match &events[4] {
            Event::SpanEnd { id, name: "outer", args, .. } => {
                assert_eq!(*id, outer_id);
                assert_eq!(args.as_slice(), &[("outer_arg", 7)]);
            }
            other => panic!("expected outer end, got {other:?}"),
        }
    }

    #[test]
    fn count_always_accumulates_without_a_recorder() {
        let _guard = SERIAL.lock().unwrap();
        uninstall();
        reset_counters();
        assert_eq!(count_always("served.requests", 2), 2);
        assert_eq!(count_always("served.requests", 3), 5);
        assert_eq!(counter_value("served.requests"), 5);
        // Arming a recorder makes the same counter emit events on top.
        let ring = Arc::new(RingRecorder::with_capacity(16));
        install(ring.clone());
        assert_eq!(count_always("served.requests", 1), 6);
        uninstall();
        reset_counters();
        let events = ring.take();
        assert!(
            matches!(events.as_slice(), [Event::Counter { name: "served.requests", value: 6, .. }]),
            "{events:?}"
        );
    }

    #[test]
    fn noop_install_keeps_gate_closed() {
        let _guard = SERIAL.lock().unwrap();
        install(Arc::new(NoopRecorder));
        assert!(!recording(), "installing Noop must leave the fast path disarmed");
        uninstall();
    }

    #[test]
    fn counters_accumulate_while_recording() {
        let _guard = SERIAL.lock().unwrap();
        let ring = Arc::new(RingRecorder::with_capacity(16));
        install(ring.clone());
        count("accum", 2);
        count("accum", 3);
        assert_eq!(counter_value("accum"), 5);
        uninstall();
        reset_counters();
        assert_eq!(counter_value("accum"), 0);
        let values: Vec<u64> = ring
            .take()
            .into_iter()
            .filter_map(|e| match e {
                Event::Counter { name: "accum", value, .. } => Some(value),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![2, 5], "counter events carry running totals");
    }
}
