//! Chrome-trace (Trace Event Format) export.
//!
//! Produces the JSON object `chrome://tracing` and [Perfetto] open
//! directly: a `traceEvents` array of duration (`"B"`/`"E"`) events with
//! microsecond timestamps, one lane per thread, plus counter (`"C"`)
//! events. Span args attached via [`crate::Span::arg`] appear on the end
//! event and show up in the Perfetto span-details panel.
//!
//! [Perfetto]: https://ui.perfetto.dev

use crate::event::Event;
use crate::json::escape;
use std::fmt::Write as _;

/// The `pid` every lane reports (single-process tracing).
const PID: u64 = 1;

/// Renders `events` (in emission order) as a complete Chrome-trace JSON
/// document.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        match event {
            Event::SpanStart { tid, name, t_ns, .. } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"B\",\"pid\":{PID},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\
                     \"cat\":\"guardrail\"}}",
                    micros(*t_ns),
                    escape(name)
                );
            }
            Event::SpanEnd { tid, name, t_ns, args, .. } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"E\",\"pid\":{PID},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\
                     \"cat\":\"guardrail\",\"args\":{{",
                    micros(*t_ns),
                    escape(name)
                );
                for (i, (key, value)) in args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":{value}", escape(key));
                }
                out.push_str("}}");
            }
            Event::Counter { name, tid, value, t_ns } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\
                     \"cat\":\"guardrail\",\"args\":{{\"value\":{value}}}}}",
                    micros(*t_ns),
                    escape(name)
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Trace-event timestamps are microseconds; keep nanosecond precision as a
/// fraction.
fn micros(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1_000, t_ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    #[test]
    fn export_is_valid_json_with_balanced_phases() {
        let events = vec![
            Event::SpanStart { id: 1, parent: 0, tid: 1, name: "fit", t_ns: 1_000 },
            Event::SpanStart { id: 2, parent: 1, tid: 1, name: "pc_level", t_ns: 2_500 },
            Event::Counter { name: "ci_tests", tid: 1, value: 12, t_ns: 3_000 },
            Event::SpanEnd {
                id: 2,
                tid: 1,
                name: "pc_level",
                t_ns: 4_000,
                args: vec![("edges", 6)],
            },
            Event::SpanEnd { id: 1, tid: 1, name: "fit", t_ns: 9_999, args: vec![] },
        ];
        let doc = parse(&chrome_trace(&events)).unwrap();
        let trace_events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(trace_events.len(), events.len());
        let phase = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap().to_string();
        let begins = trace_events.iter().filter(|e| phase(e) == "B").count();
        let ends = trace_events.iter().filter(|e| phase(e) == "E").count();
        assert_eq!(begins, ends);
        // Microsecond timestamps with the ns remainder as fraction.
        assert_eq!(trace_events[0].get("ts").and_then(Json::as_num), Some(1.0));
        assert_eq!(trace_events[1].get("ts").and_then(Json::as_num), Some(2.5));
        // Args survive on the end event.
        assert_eq!(
            trace_events[3].get("args").and_then(|a| a.get("edges")).and_then(Json::as_u64),
            Some(6)
        );
    }
}
