//! The observability event model and its JSONL wire format.
//!
//! Every event serializes to one flat JSON object per line — the same
//! shape as the bench harness's `CRITERION_JSON` records (`{"name":…,
//! "mean_ns":…}`), so one parser ([`crate::json`]) post-processes traces
//! and bench baselines alike. Three event kinds exist:
//!
//! ```text
//! {"type":"span_start","id":1,"parent":0,"tid":1,"name":"pc_level","t_ns":120}
//! {"type":"span_end","id":1,"tid":1,"name":"pc_level","t_ns":950,"args":{"edges":36}}
//! {"type":"counter","name":"ci_tests","tid":1,"value":36,"t_ns":400}
//! ```

use crate::json::{escape, Json};

/// One observability event. Span names are `&'static str` by construction —
/// instrumentation sites name their stages with literals — so recording a
/// begin/end pair moves no owned strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A span opened.
    SpanStart {
        /// Process-unique span id (never 0).
        id: u64,
        /// Enclosing span's id on the same thread, or 0 at top level.
        parent: u64,
        /// Dense per-thread lane id.
        tid: u64,
        /// Stage name.
        name: &'static str,
        /// Nanoseconds since the trace epoch.
        t_ns: u64,
    },
    /// A span closed; `args` carries its attached metrics.
    SpanEnd {
        /// Id of the span being closed.
        id: u64,
        /// Lane of the closing thread (always the opening thread: spans are
        /// RAII guards and `Span` is not `Send`-hostile but never migrates
        /// in practice).
        tid: u64,
        /// Stage name (repeated so end events are self-describing).
        name: &'static str,
        /// Nanoseconds since the trace epoch.
        t_ns: u64,
        /// `key = value` metrics attached via [`crate::Span::arg`].
        args: Vec<(&'static str, u64)>,
    },
    /// A counter sample: the running total of a named counter.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Lane of the sampling thread.
        tid: u64,
        /// Running total after the increment that emitted this sample.
        value: u64,
        /// Nanoseconds since the trace epoch.
        t_ns: u64,
    },
}

impl Event {
    /// The event's stage/counter name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::SpanStart { name, .. }
            | Event::SpanEnd { name, .. }
            | Event::Counter { name, .. } => name,
        }
    }

    /// The event's timestamp in nanoseconds since the trace epoch.
    pub fn t_ns(&self) -> u64 {
        match self {
            Event::SpanStart { t_ns, .. }
            | Event::SpanEnd { t_ns, .. }
            | Event::Counter { t_ns, .. } => *t_ns,
        }
    }

    /// Serializes the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        match self {
            Event::SpanStart { id, parent, tid, name, t_ns } => format!(
                "{{\"type\":\"span_start\",\"id\":{id},\"parent\":{parent},\"tid\":{tid},\
                 \"name\":\"{}\",\"t_ns\":{t_ns}}}",
                escape(name)
            ),
            Event::SpanEnd { id, tid, name, t_ns, args } => {
                let mut line = format!(
                    "{{\"type\":\"span_end\",\"id\":{id},\"tid\":{tid},\"name\":\"{}\",\
                     \"t_ns\":{t_ns},\"args\":{{",
                    escape(name)
                );
                for (i, (key, value)) in args.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    line.push_str(&format!("\"{}\":{value}", escape(key)));
                }
                line.push_str("}}");
                line
            }
            Event::Counter { name, tid, value, t_ns } => format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"tid\":{tid},\"value\":{value},\
                 \"t_ns\":{t_ns}}}",
                escape(name)
            ),
        }
    }
}

/// An [`Event`] read back from its JSONL line: identical fields with owned
/// strings (the reader cannot know the original `&'static str`s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedEvent {
    /// `"span_start"`, `"span_end"`, or `"counter"`.
    pub kind: String,
    /// Span id (0 for counters).
    pub id: u64,
    /// Parent span id (0 unless `kind == "span_start"`).
    pub parent: u64,
    /// Thread lane.
    pub tid: u64,
    /// Stage / counter name.
    pub name: String,
    /// Nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Counter total (0 for spans).
    pub value: u64,
    /// Span-end args, in emission order.
    pub args: Vec<(String, u64)>,
}

impl ParsedEvent {
    /// Whether this parsed line is field-for-field the same event as `e`.
    pub fn matches(&self, e: &Event) -> bool {
        match e {
            Event::SpanStart { id, parent, tid, name, t_ns } => {
                self.kind == "span_start"
                    && self.id == *id
                    && self.parent == *parent
                    && self.tid == *tid
                    && self.name == *name
                    && self.t_ns == *t_ns
            }
            Event::SpanEnd { id, tid, name, t_ns, args } => {
                self.kind == "span_end"
                    && self.id == *id
                    && self.tid == *tid
                    && self.name == *name
                    && self.t_ns == *t_ns
                    && self.args.len() == args.len()
                    && self.args.iter().zip(args).all(|((pk, pv), (k, v))| pk == k && pv == v)
            }
            Event::Counter { name, tid, value, t_ns } => {
                self.kind == "counter"
                    && self.name == *name
                    && self.tid == *tid
                    && self.value == *value
                    && self.t_ns == *t_ns
            }
        }
    }
}

/// Parses one JSONL line back into a [`ParsedEvent`].
pub fn parse_jsonl_line(line: &str) -> Result<ParsedEvent, String> {
    let value = crate::json::parse(line)?;
    let obj = value.as_obj().ok_or("event line is not a JSON object")?;
    let field_u64 = |key: &str| -> u64 {
        obj.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_u64()).unwrap_or(0)
    };
    let field_str = |key: &str| -> Result<String, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_str())
            .map(str::to_string)
            .ok_or_else(|| format!("event line missing string field {key:?}"))
    };
    let kind = field_str("type")?;
    if !matches!(kind.as_str(), "span_start" | "span_end" | "counter") {
        return Err(format!("unknown event type {kind:?}"));
    }
    let mut args = Vec::new();
    if let Some((_, Json::Obj(arg_obj))) = obj.iter().find(|(k, _)| k == "args") {
        for (k, v) in arg_obj {
            args.push((k.clone(), v.as_u64().ok_or("non-integer span arg")?));
        }
    }
    Ok(ParsedEvent {
        kind,
        id: field_u64("id"),
        parent: field_u64("parent"),
        tid: field_u64("tid"),
        name: field_str("name")?,
        t_ns: field_u64("t_ns"),
        value: field_u64("value"),
        args,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_kind_round_trips() {
        let events = vec![
            Event::SpanStart { id: 3, parent: 1, tid: 2, name: "pc_level", t_ns: 120 },
            Event::SpanEnd {
                id: 3,
                tid: 2,
                name: "pc_level",
                t_ns: 950,
                args: vec![("edges", 36), ("ci_tests", 120)],
            },
            Event::SpanEnd { id: 4, tid: 1, name: "empty_args", t_ns: 7, args: vec![] },
            Event::Counter { name: "cache_hits", tid: 1, value: 99, t_ns: 400 },
        ];
        for event in &events {
            let line = event.to_jsonl();
            let parsed = parse_jsonl_line(&line).unwrap();
            assert!(parsed.matches(event), "round-trip mismatch: {event:?} vs {parsed:?}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_jsonl_line("not json").is_err());
        assert!(parse_jsonl_line("{\"type\":\"mystery\",\"name\":\"x\"}").is_err());
        assert!(parse_jsonl_line("{\"type\":\"counter\"}").is_err(), "missing name");
    }
}
