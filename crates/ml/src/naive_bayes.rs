//! Categorical naive Bayes.

use crate::features::FeatureSpace;
use crate::Classifier;
use guardrail_table::{Row, Table, Value};

/// Categorical naive Bayes with Laplace (add-one) smoothing.
///
/// Scores are accumulated in log space; missing/unseen features contribute
/// nothing to any class (equivalent to marginalizing them out under the
/// naive independence assumption).
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    space: FeatureSpace,
    /// `log P(class)`.
    log_prior: Vec<f64>,
    /// `log P(feature f = code | class)`: `log_likelihood[f][class * card + code]`.
    log_likelihood: Vec<Vec<f64>>,
}

impl NaiveBayes {
    /// Fits the model on `table` with labels in `label_col`.
    pub fn fit(table: &Table, label_col: usize) -> Self {
        let space = FeatureSpace::fit(table, label_col);
        let (feats, labels) = space.encode_table(table);
        let classes = space.num_classes().max(1);

        let mut class_counts = vec![0u64; classes];
        for &y in &labels {
            class_counts[y as usize] += 1;
        }
        let n = labels.len() as f64;
        let log_prior = class_counts
            .iter()
            .map(|&c| (((c as f64) + 1.0) / (n + classes as f64)).ln())
            .collect();

        let mut log_likelihood = Vec::with_capacity(space.num_features());
        for f in 0..space.num_features() {
            let card = space.card(f).max(1);
            let mut counts = vec![0u64; classes * card];
            for (row, &y) in feats.iter().zip(&labels) {
                if let Some(code) = row[f] {
                    counts[y as usize * card + code as usize] += 1;
                }
            }
            let mut ll = vec![0.0; classes * card];
            for class in 0..classes {
                let total: u64 = counts[class * card..(class + 1) * card].iter().sum();
                for code in 0..card {
                    let c = counts[class * card + code] as f64;
                    ll[class * card + code] = ((c + 1.0) / (total as f64 + card as f64)).ln();
                }
            }
            log_likelihood.push(ll);
        }
        Self { space, log_prior, log_likelihood }
    }

    /// Predicts the label code for encoded features.
    pub fn predict_codes(&self, feats: &[Option<u32>]) -> u32 {
        let classes = self.log_prior.len();
        let mut best = (0u32, f64::NEG_INFINITY);
        for class in 0..classes {
            let mut score = self.log_prior[class];
            for (f, code) in feats.iter().enumerate() {
                if let Some(code) = code {
                    let card = self.space.card(f).max(1);
                    score += self.log_likelihood[f][class * card + *code as usize];
                }
            }
            if score > best.1 {
                best = (class as u32, score);
            }
        }
        best.0
    }

    /// The underlying feature space.
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.space
    }
}

impl Classifier for NaiveBayes {
    fn predict_row(&self, row: &Row) -> Value {
        let feats = self.space.encode_row(row);
        self.space.label_value(self.predict_codes(&feats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// label = color (deterministic), size is noise.
    fn train_table() -> Table {
        let mut csv = String::from("color,size,label\n");
        for i in 0..200 {
            let color = if i % 2 == 0 { "red" } else { "blue" };
            let label = if i % 2 == 0 { "warm" } else { "cold" };
            csv.push_str(&format!("{color},s{},{label}\n", i % 3));
        }
        Table::from_csv_str(&csv).unwrap()
    }

    #[test]
    fn learns_deterministic_rule() {
        let t = train_table();
        let nb = NaiveBayes::fit(&t, 2);
        assert!(nb.accuracy(&t, 2) > 0.99);
        let test = Table::from_csv_str("color,size,label\nred,s0,?\nblue,s2,?\n").unwrap();
        let preds = nb.predict_table(&test);
        assert_eq!(preds[0], Value::from("warm"));
        assert_eq!(preds[1], Value::from("cold"));
    }

    #[test]
    fn unseen_value_falls_back_to_prior() {
        let t = train_table();
        let nb = NaiveBayes::fit(&t, 2);
        let test = Table::from_csv_str("color,size,label\ngibbon,gibbon,?\n").unwrap();
        // All features unknown → prediction is the prior argmax (a class that
        // exists, no panic).
        let p = nb.predict_row(&test.row_owned(0).unwrap());
        assert!(p == Value::from("warm") || p == Value::from("cold"));
    }

    #[test]
    fn corrupting_the_informative_feature_changes_predictions() {
        let t = train_table();
        let nb = NaiveBayes::fit(&t, 2);
        let clean = Table::from_csv_str("color,size,label\nred,s0,?\n").unwrap();
        let dirty = Table::from_csv_str("color,size,label\nblue,s0,?\n").unwrap();
        assert_ne!(
            nb.predict_row(&clean.row_owned(0).unwrap()),
            nb.predict_row(&dirty.row_owned(0).unwrap()),
            "corrupting the determinant must flip the prediction"
        );
    }

    #[test]
    fn skewed_prior_respected() {
        let mut csv = String::from("f,label\n");
        for i in 0..100 {
            csv.push_str(&format!("x,{}\n", if i < 90 { "a" } else { "b" }));
        }
        let t = Table::from_csv_str(&csv).unwrap();
        let nb = NaiveBayes::fit(&t, 1);
        let test = Table::from_csv_str("f,label\nx,?\n").unwrap();
        assert_eq!(nb.predict_row(&test.row_owned(0).unwrap()), Value::from("a"));
    }
}
