//! Feature encoding shared by all models.

use guardrail_table::{Dictionary, Row, Table, Value, NULL_CODE};

/// Maps rows of one schema into categorical feature-code vectors.
///
/// The space is frozen at fit time: values unseen during training (including
/// corrupted garbage like `"gibbon"`) encode to `None`, which every model
/// treats as a missing feature. This mirrors how real tabular pipelines
/// handle out-of-vocabulary categories and is what makes corrupted inputs
/// produce *degraded* rather than undefined predictions.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    feature_cols: Vec<usize>,
    feature_names: Vec<String>,
    dicts: Vec<Dictionary>,
    label_col: usize,
    label_dict: Dictionary,
}

impl FeatureSpace {
    /// Builds the space from training data; every non-label column is a
    /// feature.
    pub fn fit(table: &Table, label_col: usize) -> Self {
        assert!(label_col < table.num_columns(), "label column out of range");
        let feature_cols: Vec<usize> =
            (0..table.num_columns()).filter(|&c| c != label_col).collect();
        let dicts = feature_cols
            .iter()
            .map(|&c| table.column(c).expect("in range").dictionary().clone())
            .collect();
        let feature_names = feature_cols
            .iter()
            .map(|&c| table.schema().field(c).expect("in range").name().to_string())
            .collect();
        let label_dict = table.column(label_col).expect("in range").dictionary().clone();
        Self { feature_cols, feature_names, dicts, label_col, label_dict }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.feature_cols.len()
    }

    /// Cardinality of feature `f` (training-time distinct values).
    pub fn card(&self, f: usize) -> usize {
        self.dicts[f].len()
    }

    /// Number of label classes.
    pub fn num_classes(&self) -> usize {
        self.label_dict.len()
    }

    /// The label column index in the source schema.
    pub fn label_col(&self) -> usize {
        self.label_col
    }

    /// Decodes a label code to its value.
    pub fn label_value(&self, code: u32) -> Value {
        self.label_dict.decode(code)
    }

    /// Encodes one row into feature codes; `None` marks missing/unseen.
    pub fn encode_row(&self, row: &Row) -> Vec<Option<u32>> {
        self.feature_names
            .iter()
            .zip(&self.dicts)
            .map(|(name, dict)| {
                row.get_by_name(name).and_then(|v| dict.lookup(v)).filter(|&c| c != NULL_CODE)
            })
            .collect()
    }

    /// Encodes the full training table into `(features, labels)`,
    /// skipping rows whose label is missing.
    pub fn encode_table(&self, table: &Table) -> (Vec<Vec<Option<u32>>>, Vec<u32>) {
        let mut feats = Vec::with_capacity(table.num_rows());
        let mut labels = Vec::with_capacity(table.num_rows());
        let label_codes = table.column(self.label_col).expect("in range").codes();
        for (i, &y) in label_codes.iter().enumerate() {
            if y == NULL_CODE {
                continue;
            }
            let row = self
                .feature_cols
                .iter()
                .zip(&self.dicts)
                .map(|(&c, dict)| {
                    // Training rows come from the fitted table, but re-lookup
                    // through the frozen dict keeps this correct for any
                    // schema-compatible table.
                    let v = table.get(i, c).expect("in range");
                    dict.lookup(&v).filter(|&code| code != NULL_CODE)
                })
                .collect();
            feats.push(row);
            labels.push(y);
        }
        (feats, labels)
    }

    /// The majority label code of a label slice (fallback prediction).
    pub fn majority(labels: &[u32], num_classes: usize) -> u32 {
        let mut counts = vec![0usize; num_classes];
        for &y in labels {
            counts[y as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then(ib.cmp(ia)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::from_csv_str("color,size,label\nred,S,yes\nblue,L,no\nred,L,yes\n").unwrap()
    }

    #[test]
    fn encode_known_and_unknown() {
        let t = table();
        let fs = FeatureSpace::fit(&t, 2);
        assert_eq!(fs.num_features(), 2);
        assert_eq!(fs.num_classes(), 2);
        let row = t.row_owned(0).unwrap();
        assert_eq!(fs.encode_row(&row), vec![Some(0), Some(0)]);

        let dirty = Table::from_csv_str("color,size,label\ngibbon,S,yes\n").unwrap();
        let enc = fs.encode_row(&dirty.row_owned(0).unwrap());
        assert_eq!(enc, vec![None, Some(0)], "unseen value must encode to None");
    }

    #[test]
    fn encode_table_skips_null_labels() {
        let t = Table::from_csv_str("a,label\n1,x\n2,\n3,y\n").unwrap();
        let fs = FeatureSpace::fit(&t, 1);
        let (feats, labels) = fs.encode_table(&t);
        assert_eq!(feats.len(), 2);
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn majority_breaks_ties_deterministically() {
        assert_eq!(FeatureSpace::majority(&[0, 1, 1, 0], 2), 0);
        assert_eq!(FeatureSpace::majority(&[1, 1, 0], 2), 1);
        assert_eq!(FeatureSpace::majority(&[], 2), 0);
    }

    #[test]
    fn label_roundtrip() {
        let t = table();
        let fs = FeatureSpace::fit(&t, 2);
        assert_eq!(fs.label_value(0), Value::from("yes"));
        assert_eq!(fs.label_value(1), Value::from("no"));
        assert_eq!(fs.label_col(), 2);
    }
}
