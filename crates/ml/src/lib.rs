//! Tabular ML substrate (the paper's autogluon [8] stand-in).
//!
//! The evaluation needs an opaque classifier whose predictions degrade when
//! input attributes are corrupted — exactly the failure mode Guardrail
//! intercepts (§5, Tables 1/5/6, Fig. 6). This crate provides:
//!
//! * [`features`] — a feature space mapping table rows to categorical code
//!   vectors, robust to unseen values at inference time (corrupted cells
//!   decode to "unknown" rather than panicking).
//! * [`naive_bayes`] — categorical naive Bayes with Laplace smoothing.
//! * [`tree`] — an information-gain decision tree over categorical splits.
//! * [`ensemble`] — a majority-vote ensemble of the above (autogluon trains
//!   an ensemble too; majority voting reproduces the interface and the
//!   robustness profile without the AutoML machinery).
//!
//! All models implement [`Classifier`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ensemble;
pub mod features;
pub mod naive_bayes;
pub mod tree;

pub use ensemble::Ensemble;
pub use features::FeatureSpace;
pub use naive_bayes::NaiveBayes;
pub use tree::{DecisionTree, TreeConfig};

use guardrail_table::{Row, Table, Value};

/// A fitted classifier over one table schema.
pub trait Classifier {
    /// Predicts the label of one row (the row may carry unseen/corrupted
    /// values; they are treated as unknown features).
    fn predict_row(&self, row: &Row) -> Value;

    /// Predicts every row of a table.
    fn predict_table(&self, table: &Table) -> Vec<Value> {
        (0..table.num_rows())
            .map(|i| self.predict_row(&table.row_owned(i).expect("row in range")))
            .collect()
    }

    /// Fraction of rows whose prediction equals the label column.
    fn accuracy(&self, table: &Table, label_col: usize) -> f64 {
        if table.num_rows() == 0 {
            return f64::NAN;
        }
        let predictions = self.predict_table(table);
        let hits = predictions
            .iter()
            .enumerate()
            .filter(|(i, p)| table.get(*i, label_col).as_ref() == Some(p))
            .count();
        hits as f64 / table.num_rows() as f64
    }
}
