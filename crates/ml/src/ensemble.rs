//! Majority-vote ensemble.

use crate::naive_bayes::NaiveBayes;
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;
use guardrail_table::{Row, Table, Value};

/// The default model of the experiment harness: naive Bayes plus a shallow
/// and a deep decision tree, combined by majority vote (ties resolve toward
/// the deep tree, the strongest individual member).
///
/// This mirrors the role autogluon plays in the paper — "trains various ML
/// models (NN, tree-based models, etc.) and creates an ensemble" — at the
/// scale of this reproduction.
#[derive(Debug, Clone)]
pub struct Ensemble {
    nb: NaiveBayes,
    shallow: DecisionTree,
    deep: DecisionTree,
}

impl Ensemble {
    /// Fits all members on `table` with labels in `label_col`.
    pub fn fit(table: &Table, label_col: usize) -> Self {
        Self {
            nb: NaiveBayes::fit(table, label_col),
            shallow: DecisionTree::fit(
                table,
                label_col,
                TreeConfig { max_depth: 4, min_samples_split: 16 },
            ),
            deep: DecisionTree::fit(
                table,
                label_col,
                TreeConfig { max_depth: 10, min_samples_split: 4 },
            ),
        }
    }

    /// Individual member predictions (diagnostics).
    pub fn member_predictions(&self, row: &Row) -> [Value; 3] {
        [self.nb.predict_row(row), self.shallow.predict_row(row), self.deep.predict_row(row)]
    }
}

impl Classifier for Ensemble {
    fn predict_row(&self, row: &Row) -> Value {
        let votes = self.member_predictions(row);
        // Majority of three; any pairwise agreement wins, else the deep tree.
        if votes[0] == votes[1] || votes[0] == votes[2] {
            votes[0].clone()
        } else {
            votes[2].clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> Table {
        // label determined by a; b is a weaker correlate; c is noise.
        let mut csv = String::from("a,b,c,label\n");
        for i in 0..n {
            let a = i % 3;
            let b = if i % 7 == 0 { 9 } else { a };
            csv.push_str(&format!("{a},{b},{},{}\n", i % 5, a));
        }
        Table::from_csv_str(&csv).unwrap()
    }

    #[test]
    fn ensemble_beats_chance_and_agrees_with_members() {
        let t = table(600);
        let e = Ensemble::fit(&t, 3);
        assert!(e.accuracy(&t, 3) > 0.95);
    }

    #[test]
    fn majority_vote_logic() {
        let t = table(300);
        let e = Ensemble::fit(&t, 3);
        let row = t.row_owned(0).unwrap();
        let votes = e.member_predictions(&row);
        let pred = e.predict_row(&row);
        let agreement = (votes[0] == votes[1]) as u8
            + (votes[0] == votes[2]) as u8
            + (votes[1] == votes[2]) as u8;
        if agreement > 0 {
            // The prediction must be one of the majority values.
            assert!(votes.iter().filter(|v| **v == pred).count() >= 2);
        } else {
            assert_eq!(pred, votes[2]);
        }
    }

    #[test]
    fn predict_table_shape() {
        let t = table(100);
        let e = Ensemble::fit(&t, 3);
        assert_eq!(e.predict_table(&t).len(), 100);
    }

    #[test]
    fn corrupted_inputs_shift_predictions() {
        let t = table(600);
        let e = Ensemble::fit(&t, 3);
        let clean = Table::from_csv_str("a,b,c,label\n1,1,0,?\n").unwrap();
        let dirty = Table::from_csv_str("a,b,c,label\n2,2,0,?\n").unwrap();
        assert_ne!(
            e.predict_row(&clean.row_owned(0).unwrap()),
            e.predict_row(&dirty.row_owned(0).unwrap())
        );
    }
}
