//! Information-gain decision trees over categorical features.

use crate::features::FeatureSpace;
use crate::Classifier;
use guardrail_table::{Row, Table, Value};

/// Tree growth limits.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes with fewer rows than this.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 8, min_samples_split: 8 }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        label: u32,
    },
    Split {
        feature: usize,
        /// One child per training-time category of the feature.
        children: Vec<Node>,
        /// Prediction for missing/unseen values of the feature.
        fallback: u32,
    },
}

/// An ID3-style multiway decision tree: each split partitions on every
/// category of the highest-information-gain feature. Unknown or missing
/// feature values route to the node's majority label.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    space: FeatureSpace,
    root: Node,
}

impl DecisionTree {
    /// Fits a tree on `table` with labels in `label_col`.
    pub fn fit(table: &Table, label_col: usize, config: TreeConfig) -> Self {
        let space = FeatureSpace::fit(table, label_col);
        let (feats, labels) = space.encode_table(table);
        let indices: Vec<usize> = (0..labels.len()).collect();
        let classes = space.num_classes().max(1);
        let root = build(&space, &feats, &labels, &indices, classes, config, 0);
        Self { space, root }
    }

    /// Predicts a label code from encoded features.
    pub fn predict_codes(&self, feats: &[Option<u32>]) -> u32 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split { feature, children, fallback } => match feats[*feature] {
                    Some(code) if (code as usize) < children.len() => {
                        node = &children[code as usize];
                    }
                    _ => return *fallback,
                },
            }
        }
    }

    /// Tree depth (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { children, .. } => 1 + children.iter().map(d).max().unwrap_or(0),
            }
        }
        d(&self.root)
    }
}

impl Classifier for DecisionTree {
    fn predict_row(&self, row: &Row) -> Value {
        let feats = self.space.encode_row(row);
        self.space.label_value(self.predict_codes(&feats))
    }
}

fn entropy(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    h
}

fn class_counts(labels: &[u32], indices: &[usize], classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; classes];
    for &i in indices {
        counts[labels[i] as usize] += 1;
    }
    counts
}

fn build(
    space: &FeatureSpace,
    feats: &[Vec<Option<u32>>],
    labels: &[u32],
    indices: &[usize],
    classes: usize,
    config: TreeConfig,
    depth: usize,
) -> Node {
    let counts = class_counts(labels, indices, classes);
    let majority = counts
        .iter()
        .enumerate()
        .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then(ib.cmp(ia)))
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    let node_entropy = entropy(&counts, indices.len());

    if depth >= config.max_depth || indices.len() < config.min_samples_split || node_entropy == 0.0
    {
        return Node::Leaf { label: majority };
    }

    // Pick the feature with the highest information gain. Zero-gain splits
    // are still allowed when they partition the node into several non-empty
    // buckets: XOR-like concepts have zero *marginal* gain on every feature
    // yet become separable one level down (the classic ID3 blind spot).
    let mut best: Option<(usize, f64)> = None;
    // `feats` is indexed row-major, so the feature index cannot drive the
    // iteration directly.
    #[allow(clippy::needless_range_loop)]
    for f in 0..space.num_features() {
        let card = space.card(f);
        if card < 2 {
            continue;
        }
        let mut bucket_counts = vec![vec![0usize; classes]; card];
        let mut bucket_totals = vec![0usize; card];
        let mut known = 0usize;
        for &i in indices {
            if let Some(code) = feats[i][f] {
                bucket_counts[code as usize][labels[i] as usize] += 1;
                bucket_totals[code as usize] += 1;
                known += 1;
            }
        }
        if known == 0 {
            continue;
        }
        // A split must strictly shrink every branch, or recursion stalls.
        let nonempty = bucket_totals.iter().filter(|&&b| b > 0).count();
        if nonempty < 2 {
            continue;
        }
        let mut cond = 0.0;
        for (bc, &bt) in bucket_counts.iter().zip(&bucket_totals) {
            if bt > 0 {
                cond += (bt as f64 / known as f64) * entropy(bc, bt);
            }
        }
        let gain = node_entropy - cond;
        if best.map(|(_, g)| gain > g).unwrap_or(true) {
            best = Some((f, gain));
        }
    }

    let Some((feature, _)) = best else {
        return Node::Leaf { label: majority };
    };

    let card = space.card(feature);
    let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); card];
    for &i in indices {
        if let Some(code) = feats[i][feature] {
            partitions[code as usize].push(i);
        }
    }
    let children = partitions
        .iter()
        .map(|part| {
            if part.is_empty() {
                Node::Leaf { label: majority }
            } else {
                build(space, feats, labels, part, classes, config, depth + 1)
            }
        })
        .collect();
    Node::Split { feature, children, fallback: majority }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// label = XOR(a, b): no single feature suffices — the naive-Bayes
    /// killer, a depth-2 tree handles it.
    fn xor_table(n: usize) -> Table {
        let mut csv = String::from("a,b,label\n");
        for i in 0..n {
            let a = i % 2;
            let b = (i / 2) % 2;
            csv.push_str(&format!("{a},{b},{}\n", a ^ b));
        }
        Table::from_csv_str(&csv).unwrap()
    }

    #[test]
    fn learns_xor() {
        let t = xor_table(400);
        let tree = DecisionTree::fit(&t, 2, TreeConfig::default());
        assert!(tree.accuracy(&t, 2) > 0.99);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_limit_respected() {
        let t = xor_table(400);
        let stump = DecisionTree::fit(&t, 2, TreeConfig { max_depth: 1, min_samples_split: 2 });
        assert!(stump.depth() <= 1);
        // A depth-1 tree cannot learn XOR.
        assert!(stump.accuracy(&t, 2) < 0.75);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let t = Table::from_csv_str("a,label\n0,x\n0,x\n1,x\n1,x\n").unwrap();
        let tree = DecisionTree::fit(&t, 1, TreeConfig::default());
        assert_eq!(tree.depth(), 0);
        assert!(tree.accuracy(&t, 1) == 1.0);
    }

    #[test]
    fn unseen_values_fall_back() {
        let t = xor_table(200);
        let tree = DecisionTree::fit(&t, 2, TreeConfig::default());
        let dirty = Table::from_csv_str("a,b,label\ngibbon,1,?\n").unwrap();
        // No panic; some valid class comes out.
        let p = tree.predict_row(&dirty.row_owned(0).unwrap());
        assert!(p == Value::Int(0) || p == Value::Int(1));
    }

    #[test]
    fn corruption_flips_predictions() {
        let t = xor_table(400);
        let tree = DecisionTree::fit(&t, 2, TreeConfig::default());
        let clean = Table::from_csv_str("a,b,label\n0,1,?\n").unwrap();
        let dirty = Table::from_csv_str("a,b,label\n1,1,?\n").unwrap();
        assert_ne!(
            tree.predict_row(&clean.row_owned(0).unwrap()),
            tree.predict_row(&dirty.row_owned(0).unwrap())
        );
    }
}
