//! Numeric range constraints — the Conformance-Constraint-style companion.
//!
//! §6 of the paper positions Guardrail as categorical-only and notes that
//! Fariha et al.'s Conformance Constraints "can be used in conjunction with
//! our approach that focuses on the categorical attributes". This module
//! implements that conjunction at its simplest useful form: per-column
//! quantile envelopes on numeric attributes. A fitted [`NumericGuard`] flags
//! cells outside the `[q_lo, q_hi]` range observed in clean training data —
//! the numeric outliers the DSL's equality conditions cannot express.

use guardrail_table::{DataType, Table, Value};

/// Configuration for [`NumericGuard::fit`].
#[derive(Debug, Clone, Copy)]
pub struct NumericGuardConfig {
    /// Lower quantile of the allowed envelope.
    pub lower_q: f64,
    /// Upper quantile of the allowed envelope.
    pub upper_q: f64,
    /// Margin added on both sides, as a fraction of the envelope width
    /// (guards against flagging legitimate values just past the training
    /// extremes).
    pub margin: f64,
    /// Only columns with at least this many distinct numeric values are
    /// treated as numeric measures (low-cardinality integers are categories
    /// and belong to the DSL).
    pub min_distinct: usize,
}

impl Default for NumericGuardConfig {
    fn default() -> Self {
        Self { lower_q: 0.005, upper_q: 0.995, margin: 0.05, min_distinct: 20 }
    }
}

/// One learned numeric envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericRange {
    /// Column name.
    pub column: String,
    /// Column index at fit time.
    pub col: usize,
    /// Smallest allowed value.
    pub lo: f64,
    /// Largest allowed value.
    pub hi: f64,
}

/// A numeric out-of-range finding.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericViolation {
    /// Row index.
    pub row: usize,
    /// Column name.
    pub column: String,
    /// The offending value.
    pub value: f64,
    /// The violated envelope.
    pub range: (f64, f64),
}

/// Quantile-envelope constraints over a table's numeric columns.
#[derive(Debug, Clone, Default)]
pub struct NumericGuard {
    ranges: Vec<NumericRange>,
}

impl NumericGuard {
    /// Learns envelopes from (ideally clean) training data.
    pub fn fit(table: &Table, config: &NumericGuardConfig) -> Self {
        assert!(
            0.0 <= config.lower_q && config.lower_q < config.upper_q && config.upper_q <= 1.0,
            "quantiles must satisfy 0 ≤ lo < hi ≤ 1"
        );
        let mut ranges = Vec::new();
        for (col, field) in table.schema().fields().iter().enumerate() {
            if !matches!(field.data_type(), DataType::Int | DataType::Float) {
                continue;
            }
            let column = table.column(col).expect("in range");
            if column.distinct_count() < config.min_distinct {
                continue;
            }
            let mut values: Vec<f64> =
                column.iter().filter_map(|v| v.as_f64()).filter(|v| v.is_finite()).collect();
            if values.len() < config.min_distinct {
                continue;
            }
            // total_cmp: non-finite values are filtered above, but hostile
            // float data must never be able to panic a sort.
            values.sort_by(f64::total_cmp);
            let lo = quantile(&values, config.lower_q);
            let hi = quantile(&values, config.upper_q);
            let pad = (hi - lo) * config.margin;
            ranges.push(NumericRange {
                column: field.name().to_string(),
                col,
                lo: lo - pad,
                hi: hi + pad,
            });
        }
        Self { ranges }
    }

    /// The learned envelopes.
    pub fn ranges(&self) -> &[NumericRange] {
        &self.ranges
    }

    /// Flags out-of-envelope numeric cells in `table` (resolved by column
    /// name, so the table may have a different column order than at fit
    /// time).
    pub fn detect(&self, table: &Table) -> Vec<NumericViolation> {
        let mut out = Vec::new();
        for range in &self.ranges {
            let Some(col) = table.schema().index_of(&range.column) else { continue };
            let column = table.column(col).expect("resolved");
            for row in 0..table.num_rows() {
                let Some(v) = column.get(row).and_then(|v| v.as_f64()) else { continue };
                if v < range.lo || v > range.hi {
                    out.push(NumericViolation {
                        row,
                        column: range.column.clone(),
                        value: v,
                        range: (range.lo, range.hi),
                    });
                }
            }
        }
        out.sort_by_key(|v| v.row);
        out
    }

    /// Sorted, distinct rows with at least one numeric violation.
    pub fn dirty_rows(&self, table: &Table) -> Vec<usize> {
        let mut rows: Vec<usize> = self.detect(table).into_iter().map(|v| v.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Clamps out-of-envelope cells to the nearest bound (the numeric
    /// analogue of `rectify`). Returns the number of cells changed.
    pub fn clamp_table(&self, table: &mut Table) -> usize {
        let violations = self.detect(table);
        let mut changed = 0;
        for v in violations {
            let Some(col) = table.schema().index_of(&v.column) else { continue };
            let clamped = v.value.clamp(v.range.0, v.range.1);
            table.set(v.row, col, Value::float(clamped)).expect("cell in range");
            changed += 1;
        }
        changed
    }
}

/// Linear-interpolated quantile of a sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < sorted.len() {
        sorted[i] * (1.0 - frac) + sorted[i + 1] * frac
    } else {
        sorted[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_table::TableBuilder;

    fn table_with_ages(extra: &[i64]) -> Table {
        let mut b = TableBuilder::new(vec!["age".into(), "city".into()]);
        for i in 0..200 {
            b.push_row(vec![Value::Int(20 + (i % 50)), Value::from(format!("c{}", i % 3))])
                .unwrap();
        }
        for &v in extra {
            b.push_row(vec![Value::Int(v), Value::from("c0")]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn learns_envelope_on_numeric_only() {
        let t = table_with_ages(&[]);
        let g = NumericGuard::fit(&t, &NumericGuardConfig::default());
        assert_eq!(g.ranges().len(), 1);
        let r = &g.ranges()[0];
        assert_eq!(r.column, "age");
        assert!(r.lo <= 20.0 && r.hi >= 69.0, "{r:?}");
    }

    #[test]
    fn flags_outliers_and_clamps() {
        let clean = table_with_ages(&[]);
        let g = NumericGuard::fit(&clean, &NumericGuardConfig::default());
        let mut dirty = table_with_ages(&[999, -5]);
        let violations = g.detect(&dirty);
        assert_eq!(violations.len(), 2);
        assert_eq!(g.dirty_rows(&dirty), vec![200, 201]);
        assert!(violations.iter().any(|v| v.value == 999.0));

        let changed = g.clamp_table(&mut dirty);
        assert_eq!(changed, 2);
        assert!(g.detect(&dirty).is_empty(), "clamping is idempotent");
        let fixed = dirty.get(200, 0).unwrap().as_f64().unwrap();
        assert!(fixed <= g.ranges()[0].hi);
    }

    #[test]
    fn low_cardinality_integers_are_skipped() {
        let mut b = TableBuilder::new(vec!["flag".into()]);
        for i in 0..100 {
            b.push_row(vec![Value::Int(i % 3)]).unwrap();
        }
        let t = b.finish().unwrap();
        let g = NumericGuard::fit(&t, &NumericGuardConfig::default());
        assert!(g.ranges().is_empty(), "categorical integers must not get envelopes");
    }

    #[test]
    fn quantile_interpolation() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
        assert_eq!(quantile(&xs, 0.5), 50.0);
        assert!((quantile(&xs, 0.995) - 99.5).abs() < 1e-9);
        assert_eq!(quantile(&[7.0], 0.4), 7.0);
    }

    #[test]
    fn in_range_data_is_clean() {
        let t = table_with_ages(&[]);
        let g = NumericGuard::fit(&t, &NumericGuardConfig::default());
        assert!(g.detect(&t).is_empty());
    }

    #[test]
    #[should_panic(expected = "quantiles")]
    fn invalid_quantiles_rejected() {
        let t = table_with_ages(&[]);
        NumericGuard::fit(
            &t,
            &NumericGuardConfig { lower_q: 0.9, upper_q: 0.1, ..Default::default() },
        );
    }
}
