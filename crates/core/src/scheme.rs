//! Error-handling schemes (§7).

use guardrail_dsl::Violation;
use guardrail_table::Row;

/// What to do when an incoming row violates the synthesized constraints.
///
/// `Raise`, `Ignore`, and `Coerce` follow the semantics of the pandas
/// `errors=` convention the paper aligns with; `Rectify` is the paper's
/// novel scheme: replace the erroneous value with the one the DGP program
/// assigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorScheme {
    /// Surface the violation to the caller and stop.
    Raise,
    /// Keep the row unchanged (detection only).
    Ignore,
    /// Replace each violated dependent cell with `Null`.
    Coerce,
    /// Overwrite each violated dependent cell with the constraint's literal.
    #[default]
    Rectify,
}

impl std::str::FromStr for ErrorScheme {
    type Err = String;

    /// Parses the lowercase wire/CLI names: `raise`, `ignore`, `coerce`,
    /// `rectify`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "raise" => Ok(ErrorScheme::Raise),
            "ignore" => Ok(ErrorScheme::Ignore),
            "coerce" => Ok(ErrorScheme::Coerce),
            "rectify" => Ok(ErrorScheme::Rectify),
            other => Err(format!("unknown scheme {other:?} (raise|ignore|coerce|rectify)")),
        }
    }
}

/// Per-row result of applying a scheme.
#[derive(Debug, Clone, PartialEq)]
pub enum RowOutcome {
    /// The row satisfied every constraint.
    Clean(Row),
    /// Scheme [`ErrorScheme::Raise`]: violations to surface.
    Raised(Vec<Violation>),
    /// Scheme [`ErrorScheme::Ignore`]: the row, untouched, plus what was
    /// found.
    Ignored(Row, Vec<Violation>),
    /// Scheme [`ErrorScheme::Coerce`]: dependent cells nulled.
    Coerced(Row, Vec<Violation>),
    /// Scheme [`ErrorScheme::Rectify`]: dependent cells corrected.
    Rectified(Row, Vec<Violation>),
}

impl RowOutcome {
    /// The resulting row, unless the scheme raised.
    pub fn row(&self) -> Option<&Row> {
        match self {
            RowOutcome::Clean(r)
            | RowOutcome::Ignored(r, _)
            | RowOutcome::Coerced(r, _)
            | RowOutcome::Rectified(r, _) => Some(r),
            RowOutcome::Raised(_) => None,
        }
    }

    /// Violations detected on the row (empty when clean).
    pub fn violations(&self) -> &[Violation] {
        match self {
            RowOutcome::Clean(_) => &[],
            RowOutcome::Raised(v)
            | RowOutcome::Ignored(_, v)
            | RowOutcome::Coerced(_, v)
            | RowOutcome::Rectified(_, v) => v,
        }
    }

    /// `true` when no violation was found.
    pub fn is_clean(&self) -> bool {
        matches!(self, RowOutcome::Clean(_))
    }
}
