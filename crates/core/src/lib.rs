//! Guardrail: the end-to-end integrity-constraint API.
//!
//! This crate ties the pipeline together behind the interface a user of the
//! paper's system sees:
//!
//! ```text
//! Guardrail::fit(&clean_split, &config)      // offline synthesis (§3–4)
//!     .detect(&incoming)                     // Eqn. 1 error detection
//!     / .apply(&incoming, ErrorScheme::...)  // raise | ignore | coerce | rectify (§7)
//!     / .handle_row(&row, scheme)            // per-row guardrail for query time
//! ```
//!
//! # Example
//!
//! ```
//! use guardrail_core::{ErrorScheme, Guardrail, GuardrailConfig};
//! use guardrail_table::{Table, Value};
//!
//! // Clean training data: city is determined by zip.
//! let csv = "zip,city\n".to_string()
//!     + &"94704,Berkeley\n97201,Portland\n".repeat(200);
//! let clean = Table::from_csv_str(&csv).unwrap();
//! let guard = Guardrail::fit(&clean, &GuardrailConfig::default());
//!
//! // A corrupted row arrives at query time.
//! let dirty = Table::from_csv_str("zip,city\n94704,gibbon\n").unwrap();
//! let report = guard.detect(&dirty);
//! assert_eq!(report.dirty_rows(), vec![0]);
//!
//! let (fixed, _) = guard.apply(&dirty, ErrorScheme::Rectify);
//! assert_eq!(fixed.get(0, 1), Some(Value::from("Berkeley")));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod guardrail;
pub mod numeric;
pub mod report;
pub mod scheme;

pub use error::GuardrailError;
pub use guardrail::{BatchVet, Guardrail, GuardrailBuilder, GuardrailConfig, RectifyConflict};
pub use numeric::{NumericGuard, NumericGuardConfig, NumericViolation};
pub use report::{ApplyReport, DetectionReport};
pub use scheme::{ErrorScheme, RowOutcome};

pub use guardrail_dsl::{DslError, Program, Violation};
pub use guardrail_governor::{
    Budget, CancellationToken, Degradation, DegradationReport, ExhaustionReason, Parallelism,
    StageStatus,
};
pub use guardrail_obs::{PipelineReport, StageReport};
pub use guardrail_synth::SynthesisOutcome;
pub use guardrail_table::TableError;

/// One-line import for the common workflow:
/// `use guardrail_core::prelude::*;` brings in the fit entry points
/// ([`Guardrail`], [`GuardrailBuilder`], [`GuardrailConfig`]), the governor
/// knobs ([`Budget`], [`Parallelism`], [`DegradationReport`]), the error
/// schemes, and the table types.
pub mod prelude {
    pub use crate::{
        Budget, DegradationReport, ErrorScheme, Guardrail, GuardrailBuilder, GuardrailConfig,
        GuardrailError, Parallelism, RowOutcome,
    };
    pub use guardrail_table::{Row, Table, TableBuilder, Value};
}
