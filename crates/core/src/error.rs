//! The crate-level error type.
//!
//! Everything a caller can feed Guardrail from the outside world — CSV
//! bytes, tables, hand-written programs — flows through fallible entry
//! points that return [`GuardrailError`] instead of panicking. The enum
//! extends [`TableError`] (untrusted input) and [`DslError`] (untrusted
//! programs) with the pipeline's own preconditions.

use guardrail_dsl::DslError;
use guardrail_table::TableError;
use std::fmt;

/// Errors from fitting or applying guardrails to untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardrailError {
    /// Malformed tabular input (CSV parse errors, bad indices, …).
    Table(TableError),
    /// Malformed or inapplicable DSL program.
    Dsl(DslError),
    /// The schema has more attributes than the graph substrate supports
    /// (structure learning is bounded by [`guardrail_graph::MAX_NODES`]).
    TooManyAttributes {
        /// Attributes in the offending schema.
        got: usize,
        /// Supported maximum.
        max: usize,
    },
}

impl fmt::Display for GuardrailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardrailError::Table(e) => write!(f, "table error: {e}"),
            GuardrailError::Dsl(e) => write!(f, "program error: {e}"),
            GuardrailError::TooManyAttributes { got, max } => {
                write!(f, "schema has {got} attributes but synthesis supports at most {max}")
            }
        }
    }
}

impl std::error::Error for GuardrailError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GuardrailError::Table(e) => Some(e),
            GuardrailError::Dsl(e) => Some(e),
            GuardrailError::TooManyAttributes { .. } => None,
        }
    }
}

impl From<TableError> for GuardrailError {
    fn from(e: TableError) -> Self {
        GuardrailError::Table(e)
    }
}

impl From<DslError> for GuardrailError {
    fn from(e: DslError) -> Self {
        GuardrailError::Dsl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_chains_sources() {
        let e = GuardrailError::from(TableError::Empty);
        assert!(e.to_string().contains("table error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = GuardrailError::TooManyAttributes { got: 200, max: 128 };
        assert!(e.to_string().contains("200"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
