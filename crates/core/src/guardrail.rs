//! The [`Guardrail`] type.

use crate::error::GuardrailError;
use crate::report::{ApplyReport, DetectionReport};
use crate::scheme::{ErrorScheme, RowOutcome};
use guardrail_dsl::{CompiledProgram, IncrementalDetector, Program, Violation};
use guardrail_governor::{Budget, DegradationReport, Parallelism};
use guardrail_obs::{self as obs, PipelineReport};
use guardrail_synth::{synthesize_governed, SynthesisConfig, SynthesisOutcome};
use guardrail_table::{Row, Table, TableSource, Value};

/// Synthesis configuration for [`Guardrail::fit`] (re-exported alias of the
/// synthesis crate's config so downstream users need only this crate).
pub type GuardrailConfig = SynthesisConfig;

/// Outcome of the batched query-time vetting hook
/// ([`Guardrail::vet_rows`]): the gathered rows after the error scheme was
/// applied, plus every violation found.
#[derive(Debug, Clone)]
pub struct BatchVet {
    /// The vetted rows, in input order, processed under the requested
    /// [`ErrorScheme`] (untouched for `Raise`/`Ignore`).
    pub table: Table,
    /// All violations, ordered by row (indices into `table`, i.e. positions
    /// in the caller's row list), then statement, then branch.
    pub violations: Vec<Violation>,
    /// How many program statements fell back to the legacy row-at-a-time
    /// interpreter (decision-table key space past the enumeration cap).
    /// Zero when every statement ran vectorized, and for the empty program.
    pub legacy_statements: usize,
}

/// A rectification ambiguity: several matching branches disagree about the
/// value one attribute should take on one row.
#[derive(Debug, Clone, PartialEq)]
pub struct RectifyConflict {
    /// Row index.
    pub row: usize,
    /// The contested attribute.
    pub attribute: String,
    /// The literals proposed by the matching branches (≥ 2, not all equal).
    pub candidates: Vec<Value>,
}

/// A fitted set of integrity constraints.
///
/// Construction runs the full offline pipeline (sketch learning → Alg. 2);
/// the fitted object then validates / repairs incoming data, either in bulk
/// ([`Guardrail::detect`] / [`Guardrail::apply`]) or row-by-row at query time
/// ([`Guardrail::handle_row`]).
#[derive(Debug, Clone)]
pub struct Guardrail {
    outcome: SynthesisOutcome,
    /// Worker-count policy for the bulk table scans of
    /// [`detect`](Guardrail::detect) / [`apply`](Guardrail::apply)
    /// (inherited from the fit-time configuration; results are identical for
    /// any worker count).
    parallelism: Parallelism,
}

/// Fluent constructor for [`Guardrail`] — the one entry point that exposes
/// every fit-time knob:
///
/// ```
/// use guardrail_core::prelude::*;
///
/// let csv = "zip,city\n".to_string() + &"94704,Berkeley\n".repeat(300);
/// let clean = Table::from_csv_str(&csv).unwrap();
/// let guard = Guardrail::builder()
///     .config(GuardrailConfig::default().with_epsilon(0.02))
///     .budget(Budget::unlimited())
///     .parallelism(Parallelism::threads(2))
///     .fit(&clean)
///     .unwrap();
/// assert!(guard.degradation().is_complete());
/// ```
///
/// Unset knobs keep their defaults: [`GuardrailConfig::default`], an
/// unlimited [`Budget`], and the config's own worker policy
/// ([`Parallelism::Auto`] unless the config says otherwise).
#[derive(Debug, Clone, Default)]
pub struct GuardrailBuilder {
    config: GuardrailConfig,
    budget: Option<Budget>,
    parallelism: Option<Parallelism>,
}

impl GuardrailBuilder {
    /// Sets the synthesis configuration (ε, structure learning, MEC cap, …).
    pub fn config(mut self, config: GuardrailConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the resource budget for the whole pipeline. On exhaustion the
    /// fit degrades to the best program found so far — inspect
    /// [`Guardrail::degradation`] for what was cut short.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the worker-count policy for every parallel stage: PC's CI tests,
    /// sketch fills, and the fitted guardrail's bulk detection/repair scans.
    /// Overrides whatever the config says. Results are identical for any
    /// worker count.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Runs the offline synthesis pipeline on `source` — any
    /// [`TableSource`]: an in-memory [`Table`], an mmap segment, or a
    /// persistent store.
    pub fn fit<S: TableSource + ?Sized>(self, source: &S) -> Result<Guardrail, GuardrailError> {
        let table = source.as_table();
        let config = match self.parallelism {
            Some(p) => self.config.with_parallelism(p),
            None => self.config,
        };
        let budget = self.budget.unwrap_or_else(Budget::unlimited);
        let attrs = table.num_columns();
        if attrs > guardrail_graph::MAX_NODES {
            return Err(GuardrailError::TooManyAttributes {
                got: attrs,
                max: guardrail_graph::MAX_NODES,
            });
        }
        Ok(Guardrail {
            outcome: synthesize_governed(table, &config, &budget),
            parallelism: config.parallelism,
        })
    }
}

impl Guardrail {
    /// Starts a fluent fit: `Guardrail::builder().config(…).budget(…)
    /// .parallelism(…).fit(&table)`.
    pub fn builder() -> GuardrailBuilder {
        GuardrailBuilder::default()
    }

    /// Synthesizes constraints from (ideally clean) training data — any
    /// [`TableSource`] works (in-memory table, segment, persistent store).
    ///
    /// Panics when the schema is unsupported (more attributes than
    /// [`guardrail_graph::MAX_NODES`]); untrusted input should go through
    /// [`Guardrail::try_fit`] instead.
    pub fn fit<S: TableSource + ?Sized>(source: &S, config: &GuardrailConfig) -> Self {
        Self::try_fit(source, config).expect("unsupported schema; use try_fit for untrusted input")
    }

    /// Fallible [`Guardrail::fit`] for untrusted input: returns a typed
    /// error instead of panicking on unsupported schemas. Thin wrapper over
    /// [`Guardrail::builder`].
    pub fn try_fit<S: TableSource + ?Sized>(
        source: &S,
        config: &GuardrailConfig,
    ) -> Result<Self, GuardrailError> {
        Self::builder().config(*config).fit(source)
    }

    /// Budgeted synthesis: the whole pipeline (structure learning, MEC
    /// enumeration, sketch fills) charges `budget` and degrades to the best
    /// program found so far on exhaustion — inspect
    /// [`degradation`](Guardrail::degradation) for what was cut short.
    #[deprecated(since = "0.2.0", note = "use Guardrail::builder().budget(…).fit(&table)")]
    pub fn try_fit_governed(
        table: &Table,
        config: &GuardrailConfig,
        budget: &Budget,
    ) -> Result<Self, GuardrailError> {
        Self::builder().config(*config).budget(budget.clone()).fit(table)
    }

    /// Wraps a hand-written or previously synthesized program.
    pub fn from_program(program: Program) -> Self {
        let outcome = SynthesisOutcome {
            program,
            coverage: f64::NAN,
            cpdag: guardrail_graph::Pdag::new(0),
            mec_size: 0,
            truncated: false,
            chosen_dag: None,
            cache_stats: Default::default(),
            oracle_cache: Default::default(),
            statements: Vec::new(),
            degradation: DegradationReport::complete(),
            report: Default::default(),
        };
        Self { outcome, parallelism: Parallelism::Auto }
    }

    /// The synthesized DSL program.
    pub fn program(&self) -> &Program {
        &self.outcome.program
    }

    /// Full synthesis diagnostics (MEC size, coverage, cache stats, …).
    pub fn outcome(&self) -> &SynthesisOutcome {
        &self.outcome
    }

    /// Coverage of the fitted program on its training data.
    pub fn coverage(&self) -> f64 {
        self.outcome.coverage
    }

    /// Which synthesis stages (if any) ran out of budget during fitting.
    pub fn degradation(&self) -> &DegradationReport {
        &self.outcome.degradation
    }

    /// The fit's stage-tree report: wall time, work units, and cache ratios
    /// per pipeline stage, plus governor degradations. Always populated by
    /// a fit (recorder or not); empty for [`Guardrail::from_program`].
    pub fn report(&self) -> &PipelineReport {
        &self.outcome.report
    }

    /// Detects violations across `source` (Eqn. 1 applied row-wise) — any
    /// [`TableSource`]: an in-memory [`Table`], an mmap segment, or a
    /// persistent store. Row chunks are scanned on worker threads per the
    /// fit-time [`Parallelism`]; the report is bit-identical for any worker
    /// count.
    pub fn detect<S: TableSource + ?Sized>(&self, source: &S) -> DetectionReport {
        let table = source.as_table();
        let mut detect_span = obs::span("detect");
        detect_span.arg("rows", table.num_rows() as u64);
        let violations = match self.compile(table) {
            Some(compiled) => compiled.check_table_parallel(table, self.parallelism),
            None => Vec::new(),
        };
        detect_span.arg("violations", violations.len() as u64);
        DetectionReport { violations, rows_checked: table.num_rows() }
    }

    /// Pre-`TableSource` entry point, kept as a thin shim for callers that
    /// need the monomorphic `&Table` signature (e.g. to take a function
    /// pointer). New code should call [`detect`](Guardrail::detect), which
    /// accepts any [`TableSource`].
    #[deprecated(since = "0.3.0", note = "use detect(&source); any TableSource works")]
    pub fn detect_table(&self, table: &Table) -> DetectionReport {
        self.detect(table)
    }

    /// Starts incremental detection over an append-only `source`: compiles
    /// the fitted program, scans the rows present now, and returns a
    /// detector whose `detect_appended` probes only rows appended later
    /// (with the determinant-key index maintained alongside). `None` when
    /// the program is empty or does not bind to the source's schema — the
    /// same regimes where [`detect`](Guardrail::detect) reports clean.
    pub fn incremental<S: TableSource + ?Sized>(&self, source: &S) -> Option<IncrementalDetector> {
        if self.outcome.program.statements.is_empty() {
            return None;
        }
        IncrementalDetector::new(&self.outcome.program, source).ok()
    }

    /// Applies `scheme` to a copy of `source`'s rows, returning the
    /// processed table and what was done.
    ///
    /// `Raise` performs detection only (callers inspect the report and abort
    /// themselves — a library cannot meaningfully panic on data errors);
    /// `Ignore` detects and leaves data untouched; `Coerce` nulls violated
    /// dependent cells; `Rectify` overwrites them with the constraint's
    /// literal.
    pub fn apply<S: TableSource + ?Sized>(
        &self,
        source: &S,
        scheme: ErrorScheme,
    ) -> (Table, ApplyReport) {
        let table = source.as_table();
        let mut out = table.clone();
        let compiled = match self.compile(table) {
            Some(c) => c,
            None => return (out, ApplyReport::default()),
        };
        let violations = compiled.check_table_parallel(table, self.parallelism);
        let cells_changed = match scheme {
            ErrorScheme::Raise | ErrorScheme::Ignore => 0,
            ErrorScheme::Coerce => compiled.coerce_table_parallel(&mut out, self.parallelism),
            ErrorScheme::Rectify => compiled.rectify_table_parallel(&mut out, self.parallelism),
        };
        (out, ApplyReport { violations, cells_changed })
    }

    /// Pre-`TableSource` entry point, kept as a thin shim; see
    /// [`detect_table`](Guardrail::detect_table). New code should call
    /// [`apply`](Guardrail::apply), which accepts any [`TableSource`].
    #[deprecated(since = "0.3.0", note = "use apply(&source, scheme); any TableSource works")]
    pub fn apply_table(&self, table: &Table, scheme: ErrorScheme) -> (Table, ApplyReport) {
        self.apply(table, scheme)
    }

    /// Vets one incoming row under `scheme` — the query-time guardrail hook
    /// of Fig. 1 (used by `guardrail-sqlexec` before every ML inference).
    pub fn handle_row(&self, row: &Row, scheme: ErrorScheme) -> RowOutcome {
        let program = self.program();
        let violations = program.check_row(row);
        if violations.is_empty() {
            return RowOutcome::Clean(row.clone());
        }
        match scheme {
            ErrorScheme::Raise => RowOutcome::Raised(violations),
            ErrorScheme::Ignore => RowOutcome::Ignored(row.clone(), violations),
            ErrorScheme::Coerce => {
                let mut fixed = row.clone();
                for v in &violations {
                    fixed.set_by_name(&v.attribute, Value::Null);
                }
                RowOutcome::Coerced(fixed, violations)
            }
            ErrorScheme::Rectify => {
                let fixed = program.execute_row(row);
                RowOutcome::Rectified(fixed, violations)
            }
        }
    }

    /// Vets a batch of rows in one vectorized pass — the query-time
    /// guardrail hook of Fig. 1 for callers that hold a whole scan's worth
    /// of rows (used by `guardrail-sqlexec` before `PREDICT`): gathers
    /// `rows` from `table`, runs the compiled program's decision-table scan
    /// over the sub-table, and applies `scheme` table-wide. Equivalent to
    /// calling [`handle_row`](Guardrail::handle_row) on each row, without
    /// materializing a [`Row`] or re-resolving attribute names per row.
    ///
    /// `Raise` does not abort here (a library cannot meaningfully panic on
    /// data errors): the report's violations are ordered by row, so callers
    /// abort on `violations.first()` exactly as the per-row hook would have
    /// on the first dirty row.
    ///
    /// Returns `None` when the program references attributes `table`
    /// lacks — compilation is all-or-nothing while the value-level hook
    /// degrades per statement, so that regime must keep the per-row path.
    pub fn vet_rows<S: TableSource + ?Sized>(
        &self,
        source: &S,
        rows: &[usize],
        scheme: ErrorScheme,
    ) -> Option<BatchVet> {
        let mut vet_span = obs::span("vet_rows");
        vet_span.arg("rows", rows.len() as u64);
        let mut sub = source.as_table().take(rows);
        let Some(compiled) = self.compile(&sub) else {
            // An empty program vets trivially; a program that does not bind
            // to this schema does not.
            return self.outcome.program.statements.is_empty().then(|| BatchVet {
                table: sub,
                violations: Vec::new(),
                legacy_statements: 0,
            });
        };
        let legacy_statements = compiled.legacy_statement_count();
        let violations = compiled.check_table_parallel(&sub, self.parallelism);
        match scheme {
            ErrorScheme::Raise | ErrorScheme::Ignore => {}
            ErrorScheme::Coerce => {
                compiled.coerce_table_parallel(&mut sub, self.parallelism);
            }
            ErrorScheme::Rectify => {
                compiled.rectify_table_parallel(&mut sub, self.parallelism);
            }
        }
        vet_span.arg("violations", violations.len() as u64);
        vet_span.arg("legacy_statements", legacy_statements as u64);
        Some(BatchVet { table: sub, violations, legacy_statements })
    }

    /// Finds rows where rectification would be ambiguous: two or more
    /// matching branches assign *different* literals to the same attribute
    /// (the appendix-F "both attributes corrupted" regime, where blind
    /// rectification can cascade a wrong value). `apply(Rectify)` resolves
    /// such rows last-statement-wins; callers that prefer to quarantine them
    /// can exclude these rows first.
    pub fn conflicts<S: TableSource + ?Sized>(&self, source: &S) -> Vec<RectifyConflict> {
        let table = source.as_table();
        let mut out = Vec::new();
        let program = self.program();
        for row_idx in 0..table.num_rows() {
            let Some(row) = table.row_owned(row_idx) else { continue };
            // Collect every matching branch's (attribute, literal) pair.
            let mut assignments: std::collections::HashMap<&str, Vec<Value>> =
                std::collections::HashMap::new();
            for s in &program.statements {
                for b in &s.branches {
                    let matches = b.condition.conjuncts().iter().all(|(attr, lit)| {
                        row.get_by_name(attr).map(|v| v == lit).unwrap_or(false)
                    });
                    if matches {
                        assignments.entry(s.on.as_str()).or_default().push(b.literal.clone());
                    }
                }
            }
            for (attr, literals) in assignments {
                let disagree = literals.windows(2).any(|w| w[0] != w[1]);
                if disagree {
                    out.push(RectifyConflict {
                        row: row_idx,
                        attribute: attr.to_string(),
                        candidates: literals,
                    });
                }
            }
        }
        out.sort_by(|a, b| a.row.cmp(&b.row).then(a.attribute.cmp(&b.attribute)));
        out
    }

    fn compile(&self, table: &Table) -> Option<CompiledProgram> {
        if self.outcome.program.statements.is_empty() {
            return None;
        }
        // Compilation fails only when the program references attributes the
        // table lacks; treat that as "no applicable constraints".
        self.outcome.program.compile_for(table).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_dsl::parse_program;

    fn clean_table(rows: usize) -> Table {
        let mut csv = String::from("zip,city,weather\n");
        for i in 0..rows {
            let (zip, city) = if i % 2 == 0 { (94704, "Berkeley") } else { (97201, "Portland") };
            csv.push_str(&format!("{zip},{city},w{}\n", i % 7));
        }
        Table::from_csv_str(&csv).unwrap()
    }

    fn fitted(rows: usize) -> Guardrail {
        Guardrail::fit(&clean_table(rows), &GuardrailConfig::default())
    }

    #[test]
    fn fit_learns_zip_city_constraint() {
        let g = fitted(600);
        let stmts = &g.program().statements;
        assert!(!stmts.is_empty(), "nothing learned");
        assert!(
            stmts.iter().any(|s| (s.on == "city") || (s.on == "zip")),
            "zip↔city relationship missing: {}",
            g.program()
        );
        // The weather column is pure noise: never constrained.
        assert!(stmts.iter().all(|s| s.on != "weather"));
        assert!(g.coverage() > 0.9);
    }

    #[test]
    fn detect_and_schemes() {
        let g = fitted(600);
        let dirty =
            Table::from_csv_str("zip,city,weather\n94704,gibbon,w0\n97201,Portland,w1\n").unwrap();
        let report = g.detect(&dirty);
        assert_eq!(report.dirty_rows(), vec![0]);
        assert!((report.dirty_fraction() - 0.5).abs() < 1e-12);

        let (ignored, rep) = g.apply(&dirty, ErrorScheme::Ignore);
        assert_eq!(ignored.get(0, 1), Some(Value::from("gibbon")));
        assert_eq!(rep.cells_changed, 0);
        assert_eq!(rep.affected_rows(), vec![0]);

        let (coerced, rep) = g.apply(&dirty, ErrorScheme::Coerce);
        assert_eq!(coerced.get(0, 1), Some(Value::Null));
        assert_eq!(rep.cells_changed, 1);

        let (rectified, rep) = g.apply(&dirty, ErrorScheme::Rectify);
        assert_eq!(rectified.get(0, 1), Some(Value::from("Berkeley")));
        assert_eq!(rep.cells_changed, 1);
        // Clean row untouched by any scheme.
        assert_eq!(rectified.get(1, 1), Some(Value::from("Portland")));
    }

    #[test]
    fn handle_row_outcomes() {
        let g = fitted(400);
        let dirty = Table::from_csv_str("zip,city,weather\n94704,gibbon,w0\n").unwrap();
        let row = dirty.row_owned(0).unwrap();

        match g.handle_row(&row, ErrorScheme::Raise) {
            RowOutcome::Raised(v) => assert!(!v.is_empty()),
            other => panic!("expected Raised, got {other:?}"),
        }
        match g.handle_row(&row, ErrorScheme::Rectify) {
            RowOutcome::Rectified(fixed, v) => {
                assert_eq!(fixed.get_by_name("city"), Some(&Value::from("Berkeley")));
                assert_eq!(v.len(), 1);
            }
            other => panic!("expected Rectified, got {other:?}"),
        }
        match g.handle_row(&row, ErrorScheme::Coerce) {
            RowOutcome::Coerced(fixed, _) => {
                assert_eq!(fixed.get_by_name("city"), Some(&Value::Null));
            }
            other => panic!("expected Coerced, got {other:?}"),
        }

        let clean = Table::from_csv_str("zip,city,weather\n94704,Berkeley,w0\n").unwrap();
        let outcome = g.handle_row(&clean.row_owned(0).unwrap(), ErrorScheme::Raise);
        assert!(outcome.is_clean());
        assert!(outcome.violations().is_empty());
        assert!(outcome.row().is_some());
    }

    #[test]
    fn conflict_detection_flags_ambiguous_rectification() {
        // Two statements both constrain `status`: rel → status and
        // household → status. A row whose rel and household disagree about
        // status cannot be rectified unambiguously.
        let program = parse_program(
            r#"GIVEN rel ON status HAVING
                   IF rel = "Husband" THEN status <- "Married";
               GIVEN household ON status HAVING
                   IF household = "Single-occupant" THEN status <- "Single";"#,
        )
        .unwrap();
        let g = Guardrail::from_program(program);
        let t = Table::from_csv_str(
            "rel,household,status\n\
             Husband,Family,Married\n\
             Husband,Single-occupant,???\n\
             Other,Single-occupant,Single\n",
        )
        .unwrap();
        let conflicts = g.conflicts(&t);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].row, 1);
        assert_eq!(conflicts[0].attribute, "status");
        assert_eq!(conflicts[0].candidates.len(), 2);
        assert!(conflicts[0].candidates.contains(&Value::from("Married")));
        assert!(conflicts[0].candidates.contains(&Value::from("Single")));
        // Agreeing branches are not conflicts.
        let agreeing = parse_program(
            r#"GIVEN rel ON status HAVING
                   IF rel = "Husband" THEN status <- "Married";
                   IF rel = "Wife" THEN status <- "Married";"#,
        )
        .unwrap();
        let g = Guardrail::from_program(agreeing);
        assert!(g.conflicts(&t).is_empty());
    }

    #[test]
    fn from_program_wraps_handwritten_constraints() {
        let program = parse_program(
            r#"GIVEN rel ON marital HAVING IF rel = "Husband" THEN marital <- "Married";"#,
        )
        .unwrap();
        let g = Guardrail::from_program(program);
        let dirty = Table::from_csv_str("rel,marital\nHusband,Separated\n").unwrap();
        assert_eq!(g.detect(&dirty).dirty_rows(), vec![0]);
        assert!(g.coverage().is_nan());
    }

    #[test]
    fn empty_program_is_a_noop() {
        let g = Guardrail::from_program(Program::empty());
        let t = clean_table(10);
        assert!(g.detect(&t).is_clean());
        let (out, rep) = g.apply(&t, ErrorScheme::Rectify);
        assert_eq!(out.to_csv_string(), t.to_csv_string());
        assert_eq!(rep.cells_changed, 0);
    }

    #[test]
    fn try_fit_rejects_oversized_schema_with_typed_error() {
        // 200 columns exceeds the graph substrate's 128-node capacity: fit
        // would panic, try_fit reports it as data.
        let header: Vec<String> = (0..200).map(|i| format!("c{i}")).collect();
        let csv = header.join(",") + "\n" + &vec!["1"; 200].join(",") + "\n";
        let t = Table::from_csv_str(&csv).unwrap();
        match Guardrail::try_fit(&t, &GuardrailConfig::default()) {
            Err(crate::error::GuardrailError::TooManyAttributes { got: 200, max }) => {
                assert_eq!(max, guardrail_graph::MAX_NODES);
            }
            other => panic!("expected TooManyAttributes, got {other:?}"),
        }
    }

    #[test]
    fn governed_fit_reports_degradation() {
        let table = clean_table(400);
        let budget = Budget::with_deadline(std::time::Duration::ZERO);
        let g = Guardrail::builder().budget(budget).fit(&table).unwrap();
        assert!(!g.degradation().is_complete());
        // The degraded guardrail is still usable end to end.
        assert!(g.detect(&table).rows_checked == 400);
        let unbudgeted = fitted(400);
        assert!(unbudgeted.degradation().is_complete());
    }

    #[test]
    fn deprecated_governed_fit_still_works() {
        let table = clean_table(200);
        #[allow(deprecated)]
        let g =
            Guardrail::try_fit_governed(&table, &GuardrailConfig::default(), &Budget::unlimited())
                .unwrap();
        assert!(g.degradation().is_complete());
    }

    #[test]
    fn builder_fit_matches_plain_fit_at_any_thread_count() {
        let table = clean_table(600);
        let baseline =
            Guardrail::builder().parallelism(Parallelism::Sequential).fit(&table).unwrap();
        for threads in [2, 8] {
            let g = Guardrail::builder()
                .parallelism(Parallelism::threads(threads))
                .fit(&table)
                .unwrap();
            assert_eq!(g.program(), baseline.program(), "{threads} threads");
            assert_eq!(g.coverage(), baseline.coverage(), "{threads} threads");
        }
    }

    #[test]
    fn schema_mismatch_degrades_gracefully() {
        let g = fitted(300);
        let unrelated = Table::from_csv_str("x,y\n1,2\n").unwrap();
        assert!(g.detect(&unrelated).is_clean());
    }

    #[test]
    fn fit_and_detect_accept_persistent_stores() {
        use guardrail_table::TableStore;
        let dir = std::env::temp_dir()
            .join(format!("guardrail-core-source-{}", std::process::id()))
            .join("store");
        let _ = std::fs::remove_dir_all(&dir);
        let store = TableStore::create(&dir, &clean_table(400)).unwrap();

        // The same entry points take &Table and &TableStore alike.
        let g = Guardrail::fit(&store, &GuardrailConfig::default());
        let from_table = Guardrail::fit(&clean_table(400), &GuardrailConfig::default());
        assert_eq!(g.program(), from_table.program(), "source kind cannot change the fit");

        let report = g.detect(&store);
        assert_eq!(report.rows_checked, 400);
        assert!(report.is_clean());
        let (out, rep) = g.apply(&store, ErrorScheme::Rectify);
        assert_eq!(out.num_rows(), 400);
        assert_eq!(rep.cells_changed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deprecated_table_shims_match_source_entry_points() {
        let g = fitted(300);
        let dirty =
            Table::from_csv_str("zip,city,weather\n94704,gibbon,w0\n97201,Portland,w1\n").unwrap();
        #[allow(deprecated)]
        {
            assert_eq!(g.detect_table(&dirty).violations, g.detect(&dirty).violations);
            let (shim, shim_rep) = g.apply_table(&dirty, ErrorScheme::Rectify);
            let (new, new_rep) = g.apply(&dirty, ErrorScheme::Rectify);
            assert_eq!(shim.to_csv_string(), new.to_csv_string());
            assert_eq!(shim_rep.cells_changed, new_rep.cells_changed);
        }
    }

    #[test]
    fn incremental_detector_tracks_appends() {
        let g = fitted(400);
        let mut t = Table::from_csv_str("zip,city,weather\n94704,Berkeley,w0\n97201,Portland,w1\n")
            .unwrap();
        let mut det = g.incremental(&t).expect("fitted program binds to its own schema");
        assert_eq!(det.violations().len(), g.detect(&t).violations.len());
        t.append_rows(&[vec![Value::from(94704i64), Value::from("gibbon"), Value::from("w2")]])
            .unwrap();
        det.detect_appended(&t, &Budget::unlimited()).unwrap();
        assert_eq!(det.violations(), g.detect(&t).violations.as_slice());

        // Empty programs have nothing to track.
        assert!(Guardrail::from_program(Program::empty()).incremental(&t).is_none());
    }
}
