//! Detection and application reports.

use guardrail_dsl::Violation;

/// Result of [`crate::Guardrail::detect`] on a table.
#[derive(Debug, Clone, Default)]
pub struct DetectionReport {
    /// All violations, in row order.
    pub violations: Vec<Violation>,
    /// Rows checked.
    pub rows_checked: usize,
}

impl DetectionReport {
    /// Sorted, distinct indices of rows with at least one violation.
    pub fn dirty_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.violations.iter().map(|v| v.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// `true` when the table is violation-free.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fraction of rows flagged.
    pub fn dirty_fraction(&self) -> f64 {
        if self.rows_checked == 0 {
            0.0
        } else {
            self.dirty_rows().len() as f64 / self.rows_checked as f64
        }
    }
}

/// Result of [`crate::Guardrail::apply`] on a table.
#[derive(Debug, Clone, Default)]
pub struct ApplyReport {
    /// Violations found before the scheme acted.
    pub violations: Vec<Violation>,
    /// Cells modified by the scheme (0 for `Ignore`).
    pub cells_changed: usize,
}

impl ApplyReport {
    /// Sorted, distinct indices of rows the scheme touched or flagged.
    pub fn affected_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.violations.iter().map(|v| v.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }
}
