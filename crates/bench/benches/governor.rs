//! Criterion: resource-governor overhead.
//!
//! The budget is threaded through every hot loop of the pipeline, so its
//! checks must be close to free. Three measurements back the <2% overhead
//! claim:
//!
//! * `budget_charge` — the raw cost of `Budget::charge` per call, against an
//!   uninstrumented counter loop, for unlimited / work-capped / deadline
//!   budgets.
//! * `pc_hot_loop` — PC-stable structure learning (one charge per CI test)
//!   on an unlimited budget vs. a generous live deadline + work cap.
//! * `fill_hot_loop` — sketch filling's row scan (charges batched every 4096
//!   rows) under the same pair of budgets.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use guardrail_datasets::paper_dataset;
use guardrail_governor::Budget;
use guardrail_pgm::{pc_algorithm_governed, DataOracle, EncodedData, PcConfig};
use guardrail_synth::{fill_statement_sketch_governed, StatementSketch};

/// A budget that actively checks a wall-clock deadline and a work cap on
/// every charge but never trips — the worst case for overhead.
fn live_budget() -> Budget {
    Budget::with_deadline_and_work_cap(Duration::from_secs(3600), u64::MAX / 2)
}

fn bench_budget_charge(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_charge");
    const N: u64 = 10_000;
    group.bench_function("baseline_counter_x10k", |b| {
        b.iter(|| {
            let mut done = 0u64;
            for _ in 0..N {
                done = black_box(done + 1);
            }
            done
        })
    });
    for (name, budget) in [
        ("unlimited_x10k", Budget::unlimited()),
        ("work_cap_x10k", Budget::with_work_cap(u64::MAX / 2)),
        ("deadline_and_cap_x10k", live_budget()),
        ("child_chain_x10k", live_budget().child(Some(u64::MAX / 4))),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for _ in 0..N {
                    black_box(budget.charge(1)).unwrap();
                }
                budget.work_done()
            })
        });
    }
    group.finish();
}

fn bench_pc_hot_loop(c: &mut Criterion) {
    let dataset = paper_dataset(2, 4000);
    let encoded = EncodedData::from_table(&dataset.clean);
    let oracle = DataOracle::new(&encoded);
    let config = PcConfig { max_cond_size: 3, ..PcConfig::default() };
    let mut group = c.benchmark_group("pc_hot_loop");
    group.sample_size(20);
    group.bench_function("unlimited", |b| {
        b.iter(|| pc_algorithm_governed(black_box(&oracle), config, &Budget::unlimited()))
    });
    group.bench_function("live_deadline_and_cap", |b| {
        let budget = live_budget();
        b.iter(|| pc_algorithm_governed(black_box(&oracle), config, &budget))
    });
    group.finish();
}

fn bench_fill_hot_loop(c: &mut Criterion) {
    let dataset = paper_dataset(2, 10_000);
    let table = &dataset.clean;
    let sketch = StatementSketch::new(vec![0, 1], 2);
    let mut group = c.benchmark_group("fill_hot_loop");
    group.bench_function("unlimited", |b| {
        b.iter(|| {
            fill_statement_sketch_governed(
                black_box(table),
                black_box(&sketch),
                0.02,
                &Budget::unlimited(),
            )
        })
    });
    group.bench_function("live_deadline_and_cap", |b| {
        let budget = live_budget();
        b.iter(|| {
            fill_statement_sketch_governed(black_box(table), black_box(&sketch), 0.02, &budget)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_budget_charge, bench_pc_hot_loop, bench_fill_hot_loop);
criterion_main!(benches);
