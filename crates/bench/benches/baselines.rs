//! Criterion: baseline discovery algorithms (TANE / CTANE / FDX), for the
//! offline-cost comparison alongside Table 4.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use guardrail_baselines::{
    ctane_discover, fdx_discover, tane_discover, CtaneConfig, FdxConfig, TaneConfig,
};
use guardrail_datasets::paper_dataset;

fn bench_discovery(c: &mut Criterion) {
    let dataset = paper_dataset(9, 3000); // 21 attrs
    let table = &dataset.clean;
    let mut group = c.benchmark_group("fd_discovery_ds9_3k");
    group.sample_size(10);
    group.bench_function("tane", |b| {
        b.iter(|| tane_discover(black_box(table), &TaneConfig::default()))
    });
    group.bench_function("ctane", |b| {
        b.iter(|| ctane_discover(black_box(table), &CtaneConfig::default()))
    });
    group.bench_function("fdx", |b| {
        b.iter(|| fdx_discover(black_box(table), &FdxConfig::default()))
    });
    group.finish();
}

fn bench_tane_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tane_rows_scaling");
    group.sample_size(10);
    for &rows in &[1000usize, 4000] {
        let dataset = paper_dataset(2, rows);
        group.bench_function(format!("{rows}_rows"), |b| {
            b.iter(|| tane_discover(black_box(&dataset.clean), &TaneConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discovery, bench_tane_scaling);
criterion_main!(benches);
