//! Criterion: the online path — row validation and rectification throughput
//! (what Table 6's "Guardrail time" is made of).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use guardrail_core::{ErrorScheme, Guardrail, GuardrailConfig};
use guardrail_datasets::{inject_errors, paper_dataset, InjectConfig};
use guardrail_table::SplitSpec;

fn setup(id: u8, rows: usize) -> (Guardrail, guardrail_table::Table) {
    let dataset = paper_dataset(id, rows);
    let (train, test) = SplitSpec::default().split(&dataset.clean);
    let guard = Guardrail::fit(&train, &GuardrailConfig::default());
    let mut dirty = test;
    inject_errors(&mut dirty, &InjectConfig::default());
    (guard, dirty)
}

fn bench_detect_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_table");
    for &(id, rows) in &[(2u8, 2000usize), (2, 10_000), (1, 5000)] {
        let (guard, dirty) = setup(id, rows);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("ds{id}_{}rows", dirty.num_rows())),
            &(),
            |b, _| b.iter(|| guard.detect(black_box(&dirty))),
        );
    }
    group.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let (guard, dirty) = setup(2, 5000);
    let mut group = c.benchmark_group("apply_scheme");
    for scheme in [ErrorScheme::Ignore, ErrorScheme::Coerce, ErrorScheme::Rectify] {
        group.bench_function(format!("{scheme:?}"), |b| {
            b.iter(|| guard.apply(black_box(&dirty), scheme))
        });
    }
    group.finish();
}

fn bench_handle_row(c: &mut Criterion) {
    // Per-row vetting: the hot call inside a guarded SQL scan.
    let (guard, dirty) = setup(2, 5000);
    let rows: Vec<guardrail_table::Row> =
        (0..100.min(dirty.num_rows())).map(|i| dirty.row_owned(i).unwrap()).collect();
    c.bench_function("handle_row_rectify_x100", |b| {
        b.iter(|| {
            for row in &rows {
                black_box(guard.handle_row(row, ErrorScheme::Rectify));
            }
        })
    });
}

criterion_group!(benches, bench_detect_table, bench_schemes, bench_handle_row);
criterion_main!(benches);
