//! Criterion: the synthesis pipeline — Alg. 1 sketch filling, Alg. 2 with
//! and without the statement-level cache (§7's optimization), and the
//! end-to-end fit.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use guardrail_core::{Guardrail, GuardrailConfig};
use guardrail_datasets::paper_dataset;
use guardrail_pgm::learn_cpdag;
use guardrail_synth::{
    fill_statement_sketch, synthesize_from_cpdag, StatementSketch, SynthesisConfig,
};

fn bench_fill(c: &mut Criterion) {
    let dataset = paper_dataset(2, 5000); // Lung Cancer / CANCER network
    let table = &dataset.clean;
    let sketch = StatementSketch::new(vec![2], 3); // cancer → xray
    c.bench_function("alg1_fill_statement_5k_rows", |b| {
        b.iter(|| fill_statement_sketch(black_box(table), black_box(&sketch), 0.02))
    });
}

fn bench_mec_synthesis_cache(c: &mut Criterion) {
    let dataset = paper_dataset(1, 3000); // Adult shape: 15 attrs
    let table = &dataset.clean;
    let cpdag = learn_cpdag(table, &Default::default());
    let mut group = c.benchmark_group("alg2_mec_synthesis");
    group.sample_size(10);
    for (name, use_cache) in [("with_cache", true), ("without_cache", false)] {
        group.bench_function(name, |b| {
            let config = SynthesisConfig { use_cache, ..SynthesisConfig::default() }
                .with_parallelism(guardrail_governor::Parallelism::Sequential);
            b.iter(|| synthesize_from_cpdag(black_box(table), &cpdag, &config))
        });
    }
    group.finish();
}

fn bench_end_to_end_fit(c: &mut Criterion) {
    let dataset = paper_dataset(2, 4000);
    let mut group = c.benchmark_group("guardrail_fit");
    group.sample_size(10);
    group.bench_function("cancer_4k_rows", |b| {
        b.iter(|| Guardrail::fit(black_box(&dataset.clean), &GuardrailConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_fill, bench_mec_synthesis_cache, bench_end_to_end_fit);
criterion_main!(benches);
