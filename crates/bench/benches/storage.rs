//! Criterion: incremental detect over an appended batch vs a full-table
//! pass on a persistent 1M-row `TableStore`.
//!
//! The serving claim for the storage layer (DESIGN.md §5): once a relation
//! is indexed, detecting errors in a freshly appended batch costs work
//! proportional to the *batch*, not the relation. This bench pins that
//! claim at the acceptance shape — incremental detect on a 10k-row append
//! (1% of a 1M-row store) must come in ≥10× under a full `check_table`
//! scan of the same relation.
//!
//! Three timings are archived:
//!
//! * `detect/full_1m` — a full vectorized pass over the whole store.
//! * `detect/incremental_10k` — `detect_appended` over a freshly appended
//!   10k batch. The append itself (value interning) runs as untimed
//!   `iter_batched` setup: the line isolates the detection cost the ≥10×
//!   floor gates (asserted from best-of-N wall-clock before the criterion
//!   loop, so the acceptance criterion fails loudly, not just in a diff of
//!   archived JSON).
//! * `ingest/append_detect_10k` — the same batch through the persistent
//!   store: WAL encode + fsync + intern + probe. Durability is bounded by
//!   the disk's sync latency, so this line is archived for regression
//!   tracking but carries no cross-machine ratio assertion.
//!
//! Before any timing, a bit-identity gate asserts that the incremental
//! detector's accumulated violations equal a from-scratch `check_table`
//! over the grown store — a "speedup" that changes an answer fails the
//! bench.
//!
//! `CRITERION_JSON=<path>` archives the timings as JSON lines;
//! `results/bench/storage.jsonl` holds the seeded reference run that
//! `bench_diff` guards against regressions.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use guardrail_dsl::ast::{Branch, Condition, Program, Statement};
use guardrail_dsl::IncrementalDetector;
use guardrail_governor::Budget;
use guardrail_table::{Table, TableBuilder, TableStore, Value};
use std::time::Instant;

const ROWS: usize = 1_000_000;
const BATCH: usize = 10_000; // 1% of the base relation
const POOL: usize = 16; // pre-generated batches, cycled by the timed loops
const ZIPS: u64 = 64;
const CITIES: u64 = 16;
const STATES: u64 = 8;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// One (zip, city, state) row of the chain with ~2% noise per dependent.
fn chain_row(rng: &mut impl FnMut() -> u64) -> Vec<Value> {
    let z = rng() % ZIPS;
    let c = if rng() % 50 == 0 { (z + 1) % CITIES } else { z % CITIES };
    let s = if rng() % 50 == 0 { (c + 1) % STATES } else { c % STATES };
    vec![Value::from(format!("z{z}")), Value::from(format!("c{c}")), Value::from(format!("s{s}"))]
}

/// zip → city → state chain, same shape as the `detect_vector` bench.
fn serving_table(seed: u64, rows: usize) -> Table {
    let mut rng = xorshift(seed);
    let mut builder =
        TableBuilder::new(vec!["zip".to_string(), "city".to_string(), "state".to_string()]);
    for _ in 0..rows {
        builder.push_row(chain_row(&mut rng)).unwrap();
    }
    builder.finish().unwrap()
}

/// A single-determinant functional dependency spelled out branch by branch.
fn fd(given: &str, on: &str, pairs: impl Iterator<Item = (String, String)>) -> Statement {
    Statement {
        given: vec![given.to_string()],
        on: on.to_string(),
        branches: pairs
            .map(|(lhs, rhs)| Branch {
                condition: Condition::new(vec![(given.to_string(), Value::from(lhs))]),
                target: on.to_string(),
                literal: Value::from(rhs),
            })
            .collect(),
    }
}

/// The ground-truth program for [`serving_table`]: 64 + 16 = 80 branches.
fn chain_program() -> Program {
    Program {
        statements: vec![
            fd("zip", "city", (0..ZIPS).map(|z| (format!("z{z}"), format!("c{}", z % CITIES)))),
            fd("city", "state", (0..CITIES).map(|c| (format!("c{c}"), format!("s{}", c % STATES)))),
        ],
    }
}

fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_storage(c: &mut Criterion) {
    let dir = std::env::temp_dir()
        .join("guardrail_bench_storage")
        .join(format!("run-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = TableStore::create(&dir, &serving_table(7, ROWS)).expect("create 1M-row store");
    let program = chain_program();
    let budget = Budget::unlimited();

    // Seed the determinant index over the base relation, then run the
    // bit-identity gate: after one appended batch, the incremental
    // detector's violation list must equal a from-scratch full pass.
    let mut det = IncrementalDetector::new(&program, &store).expect("program binds to the store");
    let mut rng = xorshift(1009);
    let gate_batch: Vec<Vec<Value>> = (0..BATCH).map(|_| chain_row(&mut rng)).collect();
    store.append_rows(&gate_batch).expect("append gate batch");
    let scan = det.detect_appended(&store, &budget).expect("unlimited budget");
    assert_eq!(scan.rows_scanned, BATCH, "incremental pass scans exactly the appended batch");
    let compiled = program.compile_for(&store).expect("program binds to the grown store");
    let full = compiled.check_table(&store);
    assert!(!full.is_empty(), "noise must produce violations");
    assert_eq!(det.violations(), full.as_slice(), "incremental == full, bit for bit");

    // Batches are generated outside the timed loops: the floor gates the
    // detection path, not `format!` and friends.
    let pool: Vec<Vec<Vec<Value>>> =
        (0..POOL).map(|_| (0..BATCH).map(|_| chain_row(&mut rng)).collect()).collect();

    // The pure-detect measurements append to an in-memory continuation of
    // the same relation (identical rows and dictionaries, so the probe work
    // equals the store's) and keep the append outside the clock: the floor
    // gates detection, not interning or disk sync latency. `RefCell` lets
    // the untimed setup closure and the timed routine share the table.
    let work = std::cell::RefCell::new(store.table().clone());
    let mut next = 0usize;

    // Acceptance floor, measured directly: incremental detect on a 1% batch
    // must be ≥10× faster than a full scan of the relation.
    let full_s = best_of(3, || compiled.check_table(&store));
    let mut inc_s = f64::INFINITY;
    for _ in 0..3 {
        work.borrow_mut().append_rows(&pool[next % POOL]).expect("append bench batch");
        next += 1;
        let table = work.borrow();
        let start = Instant::now();
        black_box(det.detect_appended(&*table, &budget).expect("unlimited budget"));
        inc_s = inc_s.min(start.elapsed().as_secs_f64());
    }
    assert!(
        full_s >= 10.0 * inc_s,
        "incremental detect ({:.3}ms) must be ≥10× under a full pass ({:.3}ms)",
        inc_s * 1e3,
        full_s * 1e3,
    );

    let mut group = c.benchmark_group("storage");
    group.sample_size(10);
    group.bench_function("detect/full_1m", |b| b.iter(|| compiled.check_table(black_box(&store))));
    group.bench_function("detect/incremental_10k", |b| {
        b.iter_batched(
            || {
                work.borrow_mut().append_rows(&pool[next % POOL]).expect("append bench batch");
                next += 1;
            },
            |()| {
                let table = work.borrow();
                det.detect_appended(&*table, &budget).expect("unlimited budget")
            },
            BatchSize::LargeInput,
        )
    });
    // The persistent path: same batch shape through the WAL, fsync included.
    let mut det_store =
        IncrementalDetector::new(&program, &store).expect("program binds to the store");
    group.bench_function("ingest/append_detect_10k", |b| {
        b.iter(|| {
            store.append_rows(&pool[next % POOL]).expect("append bench batch");
            next += 1;
            det_store.detect_appended(&store, &budget).expect("unlimited budget")
        })
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
