//! Criterion: chunk-parallel detection and repair vs. the sequential path.
//!
//! `Guardrail::detect` and `Guardrail::apply` evaluate a compiled program
//! row by row; rows are independent, so the table is split into fixed-size
//! chunks mapped across worker threads and re-merged in chunk order. As with
//! the PC bench, equality is asserted before anything is timed: violations,
//! repaired bytes, and change counts must match the sequential run exactly.
//!
//! `CRITERION_JSON=<path>` archives the timings as JSON lines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use guardrail_core::{ErrorScheme, Guardrail};
use guardrail_governor::Parallelism;
use guardrail_table::Table;

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// zip → city → state chain with mild noise: the fitted program has chained
/// repairs, exercising both the per-statement barrier and the per-row scan.
fn chain_table(seed: u64, rows: usize) -> Table {
    let mut csv = String::from("zip,city,state,extra\n");
    let mut s = seed.wrapping_mul(2654435761).max(1);
    for _ in 0..rows {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let z = s % 6;
        let c = if s % 53 == 0 { (z + 1) % 3 } else { z / 2 };
        let st = if s % 47 == 0 { (c + 1) % 2 } else { c / 2 };
        csv.push_str(&format!("{z},c{c},s{st},{}\n", (s >> 8) % 5));
    }
    Table::from_csv_str(&csv).unwrap()
}

fn guard_with(parallelism: Parallelism, train: &Table) -> Guardrail {
    Guardrail::builder().parallelism(parallelism).fit(train).expect("schema is supported")
}

fn bench_detect_parallel(c: &mut Criterion) {
    let train = chain_table(1, 4000);
    let dirty = chain_table(2, 30_000);
    let n = hardware_threads();
    let seq = guard_with(Parallelism::Sequential, &train);
    let par = guard_with(Parallelism::threads(n.max(2)), &train);

    // Correctness gate: same program, same violations, same repaired bytes.
    assert_eq!(seq.program().to_string(), par.program().to_string());
    assert!(!seq.program().statements.is_empty(), "nothing to detect against");
    assert_eq!(seq.detect(&dirty).violations, par.detect(&dirty).violations);
    for scheme in [ErrorScheme::Coerce, ErrorScheme::Rectify] {
        let (seq_fixed, seq_rep) = seq.apply(&dirty, scheme);
        let (par_fixed, par_rep) = par.apply(&dirty, scheme);
        assert_eq!(seq_rep.cells_changed, par_rep.cells_changed);
        assert_eq!(seq_fixed.to_csv_string(), par_fixed.to_csv_string());
    }

    let guards = [("sequential".to_string(), &seq), (format!("threads-{n}"), &par)];
    let mut group = c.benchmark_group("detect_parallel");
    group.sample_size(30);
    for (name, guard) in &guards {
        group.bench_function(format!("detect/{name}"), |b| {
            b.iter(|| guard.detect(black_box(&dirty)))
        });
    }
    for (name, guard) in &guards {
        group.bench_function(format!("rectify/{name}"), |b| {
            b.iter(|| guard.apply(black_box(&dirty), ErrorScheme::Rectify))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detect_parallel);
criterion_main!(benches);
