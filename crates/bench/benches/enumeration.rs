//! Criterion: graph kernels — PC structure learning, MEC enumeration, and
//! acyclic-orientation counting (the Table 7 machinery).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use guardrail_datasets::paper_dataset;
use guardrail_governor::Budget;
use guardrail_graph::{acyclic_orientations, enumerate_extensions, Dag};
use guardrail_pgm::{learn_cpdag, LearnConfig};

fn bench_pc(c: &mut Criterion) {
    let mut group = c.benchmark_group("pc_algorithm");
    group.sample_size(10);
    for &id in &[2u8, 9] {
        let dataset = paper_dataset(id, 3000);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("ds{id}_{}attrs", dataset.spec.attrs)),
            &dataset,
            |b, d| b.iter(|| learn_cpdag(black_box(&d.clean), &LearnConfig::default())),
        );
    }
    group.finish();
}

fn bench_mec_enumeration(c: &mut Criterion) {
    // A chain CPDAG of growing length: MEC size n+... grows linearly, the
    // recursion exercises Meek closure heavily.
    let mut group = c.benchmark_group("mec_enumeration");
    for &n in &[6usize, 10, 14] {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(n, &edges).unwrap();
        let cpdag = dag.to_cpdag();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cpdag, |b, c| {
            b.iter(|| enumerate_extensions(black_box(c), &Budget::unlimited()))
        });
    }
    group.finish();
}

fn bench_orientation_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("acyclic_orientations");
    // Tree + chords at growing size (the Table 7 "w/o MEC" computation).
    for &n in &[20usize, 40] {
        let mut edges: Vec<(usize, usize)> = (1..n).map(|v| (v / 2, v)).collect();
        edges.push((1, n - 1));
        edges.push((2, n - 2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &edges, |b, e| {
            b.iter(|| acyclic_orientations(n, black_box(e), 5_000_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pc, bench_mec_enumeration, bench_orientation_count);
criterion_main!(benches);
