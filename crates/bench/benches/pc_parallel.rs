//! Criterion: parallel PC-stable skeleton phase vs. the sequential baseline.
//!
//! Per-edge CI tests within one level of PC-stable are independent given the
//! previous level's adjacency snapshot, so the skeleton phase fans them out
//! across worker threads. The merge is deterministic, so before timing
//! anything the bench asserts the parallel CPDAG is identical to the
//! sequential one — a speedup that changes the answer is not a speedup.
//!
//! Measured variants:
//!
//! * `threads-1` / `threads-N` — uncached oracle, so every CI test pays the
//!   full contingency-table cost: the raw parallel speedup.
//! * `cached/threads-1` / `cached/threads-N` — shared warm statistics cache:
//!   how much headroom remains once memoization has taken its share.
//!
//! `CRITERION_JSON=<path>` archives the timings as JSON lines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use guardrail_datasets::chaos;
use guardrail_governor::{Budget, Parallelism};
use guardrail_pgm::{pc_algorithm_governed, DataOracle, EncodedData, PcConfig};

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn config(parallelism: Parallelism) -> PcConfig {
    PcConfig { max_cond_size: 3, parallelism }
}

fn bench_pc_parallel(c: &mut Criterion) {
    // Dense pairwise dependence: the skeleton phase runs hundreds of CI
    // tests per level, which is the regime the parallel fan-out targets.
    let table = chaos::entangled_table(12, 2000, 9);
    let encoded = EncodedData::from_table(&table);
    let n = hardware_threads();

    // Correctness gate: parallel and sequential must agree bit-for-bit.
    let seq = pc_algorithm_governed(
        &DataOracle::new(&encoded).with_cache(false),
        config(Parallelism::Sequential),
        &Budget::unlimited(),
    );
    let par = pc_algorithm_governed(
        &DataOracle::new(&encoded).with_cache(false),
        config(Parallelism::threads(n.max(2))),
        &Budget::unlimited(),
    );
    assert_eq!(seq.0, par.0, "parallel PC must produce the sequential CPDAG");
    assert_eq!(seq.1.is_complete(), par.1.is_complete());

    let mut group = c.benchmark_group("pc_parallel");
    group.sample_size(20);
    for (name, parallelism) in [
        ("sequential".to_string(), Parallelism::Sequential),
        (format!("threads-{n}"), Parallelism::threads(n)),
    ] {
        group.bench_function(name, |b| {
            let oracle = DataOracle::new(&encoded).with_cache(false);
            b.iter(|| {
                pc_algorithm_governed(black_box(&oracle), config(parallelism), &Budget::unlimited())
            })
        });
    }
    for (name, parallelism) in [
        ("cached/sequential".to_string(), Parallelism::Sequential),
        (format!("cached/threads-{n}"), Parallelism::threads(n)),
    ] {
        group.bench_function(name, |b| {
            let oracle = DataOracle::new(&encoded);
            b.iter(|| {
                pc_algorithm_governed(black_box(&oracle), config(parallelism), &Budget::unlimited())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pc_parallel);
criterion_main!(benches);
