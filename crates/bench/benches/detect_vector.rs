//! Criterion: vectorized decision-table detect/rectify vs the legacy
//! row-at-a-time interpreter.
//!
//! The legacy path (`check_table_reference`) walks every branch of every
//! statement per row — O(rows × branches) condition evaluations. The
//! vectorized engine packs each row's determinant codes into a mixed-radix
//! key at scan time and resolves the whole branch list with one table
//! lookup and one comparison per (row, statement). The program below
//! carries ~80 branches across two statements, so the legacy path pays
//! ~80 conjunct evaluations per row where the engine pays two lookups.
//!
//! Both paths must return **bit-identical** results — violations, rectified
//! cells, and change counts are asserted equal before any timing, so a
//! "speedup" that changes an answer fails the bench.
//!
//! Shape: one 1M-row serving table (zip → city → state chain, ~2% noise per
//! dependent), detect and rectify, sequential and chunk-parallel.
//!
//! `CRITERION_JSON=<path>` archives the timings as JSON lines;
//! `results/bench/detect_vector.jsonl` holds the seeded reference run that
//! `bench_diff` guards against regressions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use guardrail_dsl::ast::{Branch, Condition, Program, Statement};
use guardrail_dsl::CompiledProgram;
use guardrail_governor::Parallelism;
use guardrail_table::{Table, TableBuilder, Value};

const ROWS: usize = 1_000_000;
const ZIPS: u64 = 64;
const CITIES: u64 = 16;
const STATES: u64 = 8;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// zip → city → state chain with ~2% noise per dependent column.
fn serving_table(seed: u64, rows: usize) -> Table {
    let mut rng = xorshift(seed);
    let mut builder =
        TableBuilder::new(vec!["zip".to_string(), "city".to_string(), "state".to_string()]);
    for _ in 0..rows {
        let z = rng() % ZIPS;
        let c = if rng() % 50 == 0 { (z + 1) % CITIES } else { z % CITIES };
        let s = if rng() % 50 == 0 { (c + 1) % STATES } else { c % STATES };
        builder
            .push_row(vec![
                Value::from(format!("z{z}")),
                Value::from(format!("c{c}")),
                Value::from(format!("s{s}")),
            ])
            .unwrap();
    }
    builder.finish().unwrap()
}

/// A single-determinant functional dependency spelled out branch by branch.
fn fd(given: &str, on: &str, pairs: impl Iterator<Item = (String, String)>) -> Statement {
    Statement {
        given: vec![given.to_string()],
        on: on.to_string(),
        branches: pairs
            .map(|(lhs, rhs)| Branch {
                condition: Condition::new(vec![(given.to_string(), Value::from(lhs))]),
                target: on.to_string(),
                literal: Value::from(rhs),
            })
            .collect(),
    }
}

/// The ground-truth program for [`serving_table`]: 64 + 16 = 80 branches.
fn chain_program() -> Program {
    Program {
        statements: vec![
            fd("zip", "city", (0..ZIPS).map(|z| (format!("z{z}"), format!("c{}", z % CITIES)))),
            fd("city", "state", (0..CITIES).map(|c| (format!("c{c}"), format!("s{}", c % STATES)))),
        ],
    }
}

/// Every measured operation must agree bit-for-bit with the legacy
/// interpreter before it is worth timing.
fn assert_paths_identical(compiled: &CompiledProgram, table: &Table, threads: usize) {
    let legacy = compiled.check_table_reference(table);
    assert!(!legacy.is_empty(), "noise must produce violations");
    assert_eq!(compiled.check_table(table), legacy, "sequential vectorized detect");
    assert_eq!(
        compiled.check_table_parallel(table, Parallelism::threads(threads)),
        legacy,
        "parallel vectorized detect"
    );

    let mut ref_t = table.clone();
    let ref_changed = compiled.rectify_table_reference(&mut ref_t);
    assert!(ref_changed > 0, "noise must produce repairs");
    for (name, par) in
        [("sequential", Parallelism::Sequential), ("parallel", Parallelism::threads(threads))]
    {
        let mut vec_t = table.clone();
        let vec_changed = compiled.rectify_table_parallel(&mut vec_t, par);
        assert_eq!(vec_changed, ref_changed, "{name} rectify change count");
        assert_eq!(vec_t.to_csv_string(), ref_t.to_csv_string(), "{name} rectified bytes");
    }
}

fn bench_detect_vector(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(2);
    let table = serving_table(7, ROWS);
    let program = chain_program();
    let compiled = program.compile_for(&table).expect("program binds to the serving schema");
    assert_paths_identical(&compiled, &table, threads);

    // Rectify is benched on an already-repaired table: the pass is then
    // idempotent (scan + zero writes), so iterations need no per-iter clone
    // and time the steady-state scan cost, the serving-path regime.
    let mut clean = table.clone();
    compiled.rectify_table_parallel(&mut clean, Parallelism::threads(threads));
    assert_eq!(compiled.check_table(&clean), Vec::new(), "rectified table must be clean");

    let mut group = c.benchmark_group("detect_vector");
    group.sample_size(10);
    group.bench_function("detect/legacy", |b| {
        b.iter(|| compiled.check_table_reference(black_box(&table)))
    });
    group.bench_function("detect/vectorized", |b| {
        b.iter(|| compiled.check_table(black_box(&table)))
    });
    group.bench_function(format!("detect/vectorized-threads-{threads}"), |b| {
        b.iter(|| compiled.check_table_parallel(black_box(&table), Parallelism::threads(threads)))
    });
    group.bench_function("rectify/legacy", |b| {
        b.iter(|| compiled.rectify_table_reference(black_box(&mut clean)))
    });
    group.bench_function("rectify/vectorized", |b| {
        b.iter(|| compiled.rectify_table_parallel(black_box(&mut clean), Parallelism::Sequential))
    });
    group.bench_function(format!("rectify/vectorized-threads-{threads}"), |b| {
        b.iter(|| {
            compiled.rectify_table_parallel(black_box(&mut clean), Parallelism::threads(threads))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detect_vector);
criterion_main!(benches);
