//! Criterion: the ML-integrated SQL executor — parse cost, execution with
//! and without predicate pushdown, and the guardrail interception overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use guardrail_core::{ErrorScheme, Guardrail, GuardrailConfig};
use guardrail_datasets::paper_dataset;
use guardrail_ml::NaiveBayes;
use guardrail_sqlexec::{parse_query, Catalog, Executor};
use guardrail_table::SplitSpec;
use std::sync::Arc;

const QUERY: &str =
    "SELECT PREDICT(m) AS pred, AVG(CASE WHEN pollution = 'high' THEN 1 ELSE 0 END) AS r \
                     FROM t WHERE smoker = 'yes' GROUP BY pred ORDER BY pred";

fn bench_parse(c: &mut Criterion) {
    c.bench_function("sql_parse", |b| b.iter(|| parse_query(black_box(QUERY))));
}

fn setup() -> (Catalog, Guardrail) {
    let dataset = paper_dataset(2, 6000);
    let (train, test) = SplitSpec::default().split(&dataset.clean);
    let model = NaiveBayes::fit(&train, dataset.label_col);
    let guard = Guardrail::fit(&train, &GuardrailConfig::default());
    let mut catalog = Catalog::new();
    catalog.add_table("t", test);
    catalog.add_model("m", Arc::new(model));
    (catalog, guard)
}

fn bench_execution(c: &mut Criterion) {
    let (catalog, guard) = setup();
    let mut group = c.benchmark_group("sql_execution");
    group.sample_size(20);
    group.bench_function("pushdown", |b| {
        let exec = Executor::new(&catalog);
        b.iter(|| exec.run(black_box(QUERY)).unwrap())
    });
    group.bench_function("no_pushdown", |b| {
        let exec = Executor::new(&catalog).with_pushdown(false);
        b.iter(|| exec.run(black_box(QUERY)).unwrap())
    });
    group.bench_function("guarded_rectify", |b| {
        let exec = Executor::new(&catalog).with_guardrail(&guard, ErrorScheme::Rectify);
        b.iter(|| exec.run(black_box(QUERY)).unwrap())
    });
    group.finish();
}

fn bench_plain_aggregation(c: &mut Criterion) {
    let (catalog, _) = setup();
    let exec = Executor::new(&catalog);
    c.bench_function("sql_group_by_no_ml", |b| {
        b.iter(|| {
            exec.run(black_box(
                "SELECT smoker, COUNT(*) AS n FROM t GROUP BY smoker ORDER BY smoker",
            ))
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_parse, bench_execution, bench_plain_aggregation);
criterion_main!(benches);
