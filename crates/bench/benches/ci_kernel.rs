//! Criterion: fused sufficient-statistics kernel vs the legacy
//! contingency-table path for CI tests.
//!
//! The legacy path (`ci_test_reference`) hashes a `u64` stratum key per row
//! into a `HashMap` and allocates one `nx·ny` count vector per stratum; the
//! fused kernel (`suffstats::ci_test_fused`) tabulates a single flat count
//! tensor in one branch-free pass and reduces it with precomputed
//! marginals, reusing per-thread scratch. Both must return **bit-identical**
//! results — asserted here for every measured shape before any timing, so a
//! "speedup" that changes an answer fails the bench.
//!
//! Shapes: marginal, level-1 (|Z| = 1) and level-2 (|Z| = 2) conditioning
//! at 10k and 100k rows — the regime a PC skeleton level fans out.
//!
//! `CRITERION_JSON=<path>` archives the timings as JSON lines;
//! `results/bench/ci_kernel.jsonl` holds the seeded reference run that
//! `bench_diff` guards against regressions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use guardrail_stats::suffstats::{
    ci_test_fused, ci_test_kernel, CiScratch, KernelPath, StratumPack,
};
use guardrail_stats::{ci_test_reference, CiTestKind};

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

const NX: usize = 3;
const NY: usize = 4;
const Z1_CARD: usize = 4;
const Z2_CARD: usize = 5;

/// One benchmark workload: x/y columns plus level-1 and level-2 packs.
struct Workload {
    label: &'static str,
    x: Vec<u32>,
    y: Vec<u32>,
    level1: StratumPack,
    level2: StratumPack,
}

fn workload(label: &'static str, rows: usize, seed: u64) -> Workload {
    let mut rng = xorshift(seed);
    let x: Vec<u32> = (0..rows).map(|_| (rng() % NX as u64) as u32).collect();
    // Mild dependence so the statistic folds non-trivial cells.
    let y: Vec<u32> = x
        .iter()
        .map(|&v| if rng() % 3 == 0 { (rng() % NY as u64) as u32 } else { v.min(NY as u32 - 1) })
        .collect();
    let z1: Vec<u32> = (0..rows).map(|_| (rng() % Z1_CARD as u64) as u32).collect();
    let z2: Vec<u32> = (0..rows).map(|_| (rng() % Z2_CARD as u64) as u32).collect();
    let level1 = StratumPack::pack(&[&z1], &[Z1_CARD]).unwrap();
    let level2 = level1.extend(&z2, Z2_CARD).unwrap();
    Workload { label, x, y, level1, level2 }
}

/// Every measured shape must agree bit-for-bit across legacy, dense, and
/// sparse before it is worth timing.
fn assert_paths_identical(w: &Workload) {
    let mut scratch = CiScratch::new();
    for kind in [CiTestKind::G2, CiTestKind::Pearson] {
        for pack in [None, Some(&w.level1), Some(&w.level2)] {
            let legacy = ci_test_reference(kind, &w.x, &w.y, pack.map(|p| p.keys()), NX, NY);
            for path in [KernelPath::Dense, KernelPath::Sparse] {
                let got = ci_test_kernel(
                    kind,
                    &w.x,
                    &w.y,
                    pack.map(|p| p.strata()),
                    NX,
                    NY,
                    path,
                    &mut scratch,
                );
                assert_eq!(got.statistic.to_bits(), legacy.statistic.to_bits(), "{path:?}");
                assert_eq!(got.df.to_bits(), legacy.df.to_bits(), "{path:?}");
                assert_eq!(got.p_value.to_bits(), legacy.p_value.to_bits(), "{path:?}");
            }
        }
    }
}

fn bench_ci_kernel(c: &mut Criterion) {
    let workloads = [workload("10k", 10_000, 42), workload("100k", 100_000, 43)];
    for w in &workloads {
        assert_paths_identical(w);
    }

    let mut group = c.benchmark_group("ci_kernel");
    group.sample_size(20);
    for w in &workloads {
        let levels: [(&str, Option<&StratumPack>); 3] =
            [("marginal", None), ("level1", Some(&w.level1)), ("level2", Some(&w.level2))];
        for (level, pack) in levels {
            group.bench_function(format!("legacy/{level}-{}", w.label), |b| {
                b.iter(|| {
                    ci_test_reference(
                        CiTestKind::G2,
                        black_box(&w.x),
                        black_box(&w.y),
                        pack.map(|p| p.keys()),
                        NX,
                        NY,
                    )
                })
            });
            group.bench_function(format!("fused/{level}-{}", w.label), |b| {
                b.iter(|| {
                    ci_test_fused(
                        CiTestKind::G2,
                        black_box(&w.x),
                        black_box(&w.y),
                        pack.map(|p| p.strata()),
                        NX,
                        NY,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ci_kernel);
criterion_main!(benches);
