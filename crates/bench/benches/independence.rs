//! Criterion: conditional-independence testing kernels — the inner loop of
//! sketch learning (one PC run issues thousands of these).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use guardrail_stats::independence::{ci_test, pack_strata, CiTestKind};

fn synthetic_codes(n: usize, card: u32, seed: u64) -> Vec<u32> {
    let mut s = seed.max(1);
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % card as u64) as u32
        })
        .collect()
}

fn bench_marginal(c: &mut Criterion) {
    let mut group = c.benchmark_group("g2_marginal");
    for &n in &[1_000usize, 10_000, 100_000] {
        let x = synthetic_codes(n, 5, 1);
        let y = synthetic_codes(n, 4, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ci_test(CiTestKind::G2, black_box(&x), black_box(&y), None, 5, 4))
        });
    }
    group.finish();
}

fn bench_conditional(c: &mut Criterion) {
    let mut group = c.benchmark_group("g2_conditional");
    for &zvars in &[1usize, 2, 3] {
        let n = 20_000;
        let x = synthetic_codes(n, 3, 1);
        let y = synthetic_codes(n, 3, 2);
        let z_cols: Vec<Vec<u32>> =
            (0..zvars).map(|i| synthetic_codes(n, 4, 10 + i as u64)).collect();
        let z_refs: Vec<&[u32]> = z_cols.iter().map(|c| c.as_slice()).collect();
        let cards = vec![4usize; zvars];
        group.bench_with_input(BenchmarkId::from_parameter(zvars), &zvars, |b, _| {
            b.iter(|| {
                let keys = pack_strata(black_box(&z_refs), &cards).unwrap();
                ci_test(CiTestKind::G2, &x, &y, Some(&keys), 3, 3)
            })
        });
    }
    group.finish();
}

fn bench_pearson_vs_g2(c: &mut Criterion) {
    let n = 50_000;
    let x = synthetic_codes(n, 6, 3);
    let y = synthetic_codes(n, 6, 4);
    let mut group = c.benchmark_group("test_statistics");
    group.bench_function("g2", |b| {
        b.iter(|| ci_test(CiTestKind::G2, black_box(&x), black_box(&y), None, 6, 6))
    });
    group.bench_function("pearson", |b| {
        b.iter(|| ci_test(CiTestKind::Pearson, black_box(&x), black_box(&y), None, 6, 6))
    });
    group.finish();
}

criterion_group!(benches, bench_marginal, bench_conditional, bench_pearson_vs_g2);
criterion_main!(benches);
