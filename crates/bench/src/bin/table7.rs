//! Table 7: search-space reduction from the MEC restriction.
//!
//! "w/ MEC": the number of DAGs in the learned equivalence class (what
//! Alg. 2 enumerates) and the enumeration time. "w/o MEC": the number of
//! acyclic orientations of the learned skeleton — the space a sketch-free
//! enumeration would face.

use guardrail_bench::printing::{banner, fmt_count};
use guardrail_bench::reference;
use guardrail_bench::{prepare, HarnessConfig};
use guardrail_governor::Budget;
use guardrail_graph::{acyclic_orientations, count_extensions};
use guardrail_pgm::{learn_cpdag, LearnConfig};
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Table 7 — search space and enumeration time", &format!("rows cap {}", cfg.rows_cap));

    println!(
        "{:<4}{:>7}{:>13}{:>12}{:>16}   {:>9}{:>12}",
        "ID", "#Attr", "#DAGs w/MEC", "time (ms)", "#DAGs w/o MEC", "paper w/", "paper w/o"
    );
    for &id in &cfg.datasets {
        let p = prepare(id, &cfg);
        let cpdag = learn_cpdag(&p.train, &LearnConfig::default());
        let t0 = Instant::now();
        let (mec_size, status) = count_extensions(&cpdag, &Budget::with_work_cap(100_000));
        let truncated = !status.is_complete();
        let enum_ms = t0.elapsed().as_secs_f64() * 1e3;
        let skeleton = cpdag.skeleton_edges();
        let orientations = acyclic_orientations(cpdag.num_nodes(), &skeleton, 5_000_000);
        println!(
            "{:<4}{:>7}{:>12}{}{:>12.2}{:>16}   {:>9}{:>12}",
            id,
            p.dataset.spec.attrs,
            mec_size,
            if truncated { "+" } else { " " },
            enum_ms,
            format!(
                "{}{}",
                fmt_count(orientations.count),
                if orientations.exact { "" } else { "≤" }
            ),
            reference::T7_DAGS_WITH_MEC[id as usize - 1],
            fmt_count(reference::T7_DAGS_WITHOUT_MEC[id as usize - 1]),
        );
    }
    println!("\nThe MEC restriction shrinks the orientation space by orders of magnitude (§8.3).");
}
