//! Compares a fresh `CRITERION_JSON` run against the seeded references in
//! `results/bench/*.jsonl` and fails (exit 1) on performance regressions.
//!
//! ```text
//! bench_diff [--reference <dir>] [--factor <f>] <fresh.jsonl>...
//! ```
//!
//! Every benchmark in the fresh files that also appears in a reference file
//! is compared by `mean_ns`; a benchmark slower than `factor ×` its
//! reference (default 2×, generous enough to absorb machine-to-machine
//! noise while catching real regressions) is reported and fails the run.
//! Benchmarks without a baseline are listed as new and pass.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Extracts the string value of `"<key>":"..."` from a JSON line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts the numeric value of `"<key>":<number>` from a JSON line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Reads `name → mean_ns` from one JSON-lines file.
fn load(path: &Path, into: &mut BTreeMap<String, f64>) -> std::io::Result<()> {
    for line in std::fs::read_to_string(path)?.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match (json_str(line, "name"), json_num(line, "mean_ns")) {
            (Some(name), Some(mean)) => {
                into.insert(name.to_string(), mean);
            }
            _ => eprintln!("bench_diff: skipping malformed line in {}: {line}", path.display()),
        }
    }
    Ok(())
}

fn reference_baselines(dir: &Path) -> std::io::Result<BTreeMap<String, f64>> {
    let mut baselines = BTreeMap::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    paths.sort();
    for path in paths {
        load(&path, &mut baselines)?;
    }
    Ok(baselines)
}

fn main() -> ExitCode {
    let mut reference = PathBuf::from("results/bench");
    let mut factor = 2.0f64;
    let mut fresh_paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reference" => match args.next() {
                Some(dir) => reference = PathBuf::from(dir),
                None => {
                    eprintln!("bench_diff: --reference requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--factor" => match args.next().and_then(|f| f.parse().ok()) {
                Some(f) if f > 1.0 => factor = f,
                _ => {
                    eprintln!("bench_diff: --factor requires a number > 1");
                    return ExitCode::FAILURE;
                }
            },
            _ => fresh_paths.push(PathBuf::from(arg)),
        }
    }
    if fresh_paths.is_empty() {
        eprintln!("usage: bench_diff [--reference <dir>] [--factor <f>] <fresh.jsonl>...");
        return ExitCode::FAILURE;
    }

    let baselines = match reference_baselines(&reference) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_diff: cannot read reference dir {}: {e}", reference.display());
            return ExitCode::FAILURE;
        }
    };
    let mut fresh = BTreeMap::new();
    for path in &fresh_paths {
        if let Err(e) = load(path, &mut fresh) {
            eprintln!("bench_diff: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let mut regressions = 0usize;
    println!(
        "{:<44} {:>14} {:>14} {:>8}  status",
        "benchmark", "ref mean_ns", "new mean_ns", "ratio"
    );
    for (name, &mean) in &fresh {
        match baselines.get(name) {
            Some(&base) if base > 0.0 => {
                let ratio = mean / base;
                let status = if ratio > factor {
                    regressions += 1;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!("{name:<44} {base:>14.1} {mean:>14.1} {ratio:>7.2}x  {status}");
            }
            _ => println!("{name:<44} {:>14} {mean:>14.1} {:>8}  new (no baseline)", "-", "-"),
        }
    }
    if regressions > 0 {
        eprintln!("bench_diff: {regressions} benchmark(s) regressed more than {factor}x");
        return ExitCode::FAILURE;
    }
    println!("bench_diff: no regression beyond {factor}x across {} benchmark(s)", fresh.len());
    ExitCode::SUCCESS
}
