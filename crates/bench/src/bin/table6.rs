//! Table 6: runtime overhead of Guardrail-augmented query execution,
//! broken into Guardrail check time vs ML inference time.
//!
//! The shape to reproduce: guardrail time scales with rows × program size
//! and is comparable to or below the inference time — a modest overhead.

use guardrail_bench::printing::banner;
use guardrail_bench::reference;
use guardrail_bench::{prepare, HarnessConfig};
use guardrail_core::{ErrorScheme, Guardrail, GuardrailConfig};
use guardrail_sqlexec::{Catalog, Executor};
use std::sync::Arc;

fn main() {
    let _trace = guardrail_bench::arm_from_env();
    let cfg = HarnessConfig::from_args();
    banner(
        "Table 6 — runtime overhead (seconds) and breakdown",
        &format!("rows cap {}; one guarded prediction query per dataset", cfg.rows_cap),
    );

    println!(
        "{:<4}{:>10}{:>16}{:>16}   {:>11}{:>11}",
        "ID", "rows", "Guardrail (s)", "Inference (s)", "paper Grd", "paper Inf"
    );
    for &id in &cfg.datasets {
        let p = prepare(id, &cfg);
        let guard = Guardrail::fit(&p.train, &GuardrailConfig::default());
        let mut catalog = Catalog::new();
        catalog.add_table("t", p.test_dirty.clone());
        catalog.add_model("m", Arc::new(p.model.clone()));
        let exec = Executor::new(&catalog).with_guardrail(&guard, ErrorScheme::Rectify);
        let out = exec
            .run("SELECT PREDICT(m) AS pred, COUNT(*) AS n FROM t GROUP BY pred")
            .expect("query runs");
        println!(
            "{:<4}{:>10}{:>16.4}{:>16.4}   {:>11.3}{:>11.3}",
            id,
            p.test_dirty.num_rows(),
            out.stats.guardrail_nanos as f64 / 1e9,
            out.stats.inference_nanos as f64 / 1e9,
            reference::T6_GUARDRAIL_S[id as usize - 1],
            reference::T6_INFERENCE_S[id as usize - 1],
        );
    }
    println!("\npaper: average Guardrail overhead 0.332 s — lightweight next to inference");
}
