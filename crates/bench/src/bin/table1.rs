//! Table 1: injected errors vs ML mis-predictions per dataset, plus the
//! Spearman correlation between the two series (paper: ρ = 0.947,
//! p = 2.91e-6).

use guardrail_bench::printing::banner;
use guardrail_bench::reference;
use guardrail_bench::{prepare, HarnessConfig};
use guardrail_stats::spearman;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner(
        "Table 1 — errors and mis-predictions across datasets",
        &format!("rows cap {} (use --full for paper-scale rows)", cfg.rows_cap),
    );

    println!(
        "{:<4}{:>10}{:>12}   {:>14}{:>14}",
        "ID", "# Errors", "# Mis-pred", "paper #Err", "paper #Mis"
    );
    let mut errors = Vec::new();
    let mut mispreds = Vec::new();
    for &id in &cfg.datasets {
        let p = prepare(id, &cfg);
        let n_err = p.injection.errors.len();
        let n_mis = p.mispredicted_rows().len();
        println!(
            "{:<4}{:>10}{:>12}   {:>14}{:>14}",
            id,
            n_err,
            n_mis,
            reference::T1_ERRORS[id as usize - 1],
            reference::T1_MISPRED[id as usize - 1]
        );
        errors.push(n_err as f64);
        mispreds.push(n_mis as f64);
    }
    if errors.len() >= 3 {
        let r = spearman(&errors, &mispreds);
        println!(
            "\nSpearman rho = {:.3} (p = {:.2e})   [paper: rho = {:.3}]",
            r.rho,
            r.p_value,
            reference::T1_SPEARMAN
        );
    }
    let ratio: f64 =
        errors.iter().zip(&mispreds).filter(|(e, _)| **e > 0.0).map(|(e, m)| m / e).sum::<f64>()
            / errors.len() as f64;
    println!("average mis-prediction/error ratio = {ratio:.2}   [paper: 0.24]");
}
