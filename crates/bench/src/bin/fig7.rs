//! Fig. 7: impact of the noise-tolerance threshold ε on coverage and loss.
//!
//! Coverage should increase with ε (more branches clear the bar) at the
//! cost of higher loss (the kept branches tolerate more disagreeing rows).
//! The paper recommends ε ∈ [0.01, 0.05].

use guardrail_bench::printing::banner;
use guardrail_bench::reference;
use guardrail_bench::{prepare, HarnessConfig};
use guardrail_core::{Guardrail, GuardrailConfig};

const EPSILONS: [f64; 7] = [0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2];

fn main() {
    let cfg = HarnessConfig::from_args();
    banner(
        "Figure 7 — impact of ε on coverage and loss",
        &format!(
            "rows cap {}; paper recommends ε in [{}, {}]",
            cfg.rows_cap,
            reference::F7_RECOMMENDED_EPS.0,
            reference::F7_RECOMMENDED_EPS.1
        ),
    );

    print!("{:<4}{:>10}", "ID", "series");
    for e in EPSILONS {
        print!("{e:>9}");
    }
    println!();

    for &id in &cfg.datasets {
        let p = prepare(id, &cfg);
        let mut coverages = Vec::new();
        let mut losses = Vec::new();
        for eps in EPSILONS {
            let guard = Guardrail::fit(&p.train, &GuardrailConfig::default().with_epsilon(eps));
            let cov = if guard.coverage().is_nan() { 0.0 } else { guard.coverage() };
            // Loss rate: total branch loss over covered rows of the chosen
            // program (the blue series in the paper's figure).
            let (loss, support): (usize, usize) = guard
                .outcome()
                .statements
                .iter()
                .map(|f| (f.loss, f.support))
                .fold((0, 0), |(l, s), (fl, fs)| (l + fl, s + fs));
            let loss_rate = if support == 0 { 0.0 } else { loss as f64 / support as f64 };
            coverages.push(cov);
            losses.push(loss_rate);
        }
        print!("{:<4}{:>10}", id, "coverage");
        for c in &coverages {
            print!("{c:>9.3}");
        }
        println!();
        print!("{:<4}{:>10}", "", "loss");
        for l in &losses {
            print!("{l:>9.4}");
        }
        println!();
    }
    println!("\ncoverage rises with ε while per-branch loss grows — the paper's trade-off.");
}
