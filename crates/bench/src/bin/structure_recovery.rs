//! Extra experiment (beyond the paper, enabled by the synthetic substrate):
//! how well does each structure learner recover the *ground-truth* DAG
//! skeleton? The paper cannot measure this — its real datasets have no known
//! DGP; our SEM generators do.

use guardrail_bench::printing::{banner, fmt_metric};
use guardrail_bench::{prepare, HarnessConfig};
use guardrail_pgm::{learn_cpdag, Algorithm, LearnConfig, Sampler};
use std::collections::BTreeSet;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner(
        "Structure recovery — learned skeleton vs ground-truth SEM DAG",
        &format!("rows cap {}; precision/recall/F1 over undirected edges", cfg.rows_cap),
    );

    println!(
        "{:<4}{:>7}   {:>8}{:>8}{:>8}   {:>8}{:>8}{:>8}   {:>8}{:>8}{:>8}",
        "ID",
        "#edges",
        "P(aux)",
        "R(aux)",
        "F1(aux)",
        "P(id)",
        "R(id)",
        "F1(id)",
        "P(hc)",
        "R(hc)",
        "F1(hc)"
    );
    for &id in &cfg.datasets {
        let p = prepare(id, &cfg);
        let truth: BTreeSet<(usize, usize)> =
            p.dataset.sem.dag().edges().into_iter().map(|(u, v)| (u.min(v), u.max(v))).collect();
        let mut line = format!("{:<4}{:>7}   ", id, truth.len());
        for learn in [
            LearnConfig { sampler: Sampler::Auxiliary, ..LearnConfig::default() },
            LearnConfig { sampler: Sampler::Identity, ..LearnConfig::default() },
            LearnConfig { algorithm: Algorithm::HillClimbBic, ..LearnConfig::default() },
        ] {
            let cpdag = learn_cpdag(&p.train, &learn);
            let learned: BTreeSet<(usize, usize)> = cpdag.skeleton_edges().into_iter().collect();
            let tp = learned.intersection(&truth).count() as f64;
            let precision = if learned.is_empty() { f64::NAN } else { tp / learned.len() as f64 };
            let recall = if truth.is_empty() { f64::NAN } else { tp / truth.len() as f64 };
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                f64::NAN
            };
            line.push_str(&format!(
                "{:>8}{:>8}{:>8}   ",
                fmt_metric(precision),
                fmt_metric(recall),
                fmt_metric(f1)
            ));
        }
        println!("{}", line.trim_end());
    }
    println!(
        "\nColumns: auxiliary-sampler PC (the paper's pipeline), identity-sampler PC, \
         BIC hill climbing."
    );
}
