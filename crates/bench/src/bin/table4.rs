//! Table 4: offline synthesis wall-clock per dataset.
//!
//! Absolute numbers are incomparable to the paper's (different hardware,
//! language, and row caps); the shape to check is that time scales with the
//! attribute count and the MEC size, and stays a one-off offline cost.

use guardrail_bench::printing::banner;
use guardrail_bench::reference;
use guardrail_bench::{prepare, HarnessConfig};
use guardrail_core::{Guardrail, GuardrailConfig};
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Table 4 — offline synthesis time", &format!("rows cap {}", cfg.rows_cap));

    println!(
        "{:<4}{:>8}{:>10}{:>14}{:>12}   {:>14}",
        "ID", "# Attr", "rows", "time (s)", "MEC size", "paper time(s)"
    );
    for &id in &cfg.datasets {
        let p = prepare(id, &cfg);
        let t0 = Instant::now();
        let guard = Guardrail::fit(&p.train, &GuardrailConfig::default());
        let elapsed = t0.elapsed().as_secs_f64();
        println!(
            "{:<4}{:>8}{:>10}{:>14.3}{:>12}   {:>14.0}",
            id,
            p.dataset.spec.attrs,
            p.train.num_rows(),
            elapsed,
            guard.outcome().mec_size,
            reference::T4_TIME_S[id as usize - 1]
        );
    }
    println!("\nSynthesis is a one-off offline cost per dataset (paper §8.1).");
}
