//! Table 3: error-detection effectiveness (F1 / MCC) of Guardrail vs TANE,
//! CTANE, and FDX across the 12 datasets. "-" marks a baseline failure
//! (resource exhaustion / numerical), as in the paper.

use guardrail_baselines::{
    ctane_discover, ctane_discover_variable, detect_cfd_violations, detect_fd_violations_minority,
    detect_variable_cfd_violations, fdx_discover, tane_discover, CtaneConfig, FdxConfig,
    TaneConfig,
};
use guardrail_bench::printing::{banner, fmt_metric, fmt_opt};
use guardrail_bench::reference;
use guardrail_bench::{prepare, HarnessConfig};
use guardrail_core::{Guardrail, GuardrailConfig};
use guardrail_stats::metrics::confusion_from_indices;
use guardrail_table::Table;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner(
        "Table 3 — error detection: Guardrail vs TANE / CTANE / FDX",
        &format!(
            "rows cap {}; discovery on the clean split, detection on the dirty split",
            cfg.rows_cap
        ),
    );

    println!(
        "{:<4}{:<7}{:>10}{:>9}{:>9}{:>9}   {:>12}",
        "ID", "Metric", "Guardrail", "TANE", "CTANE", "FDX", "paper(Grd)"
    );

    let mut wins = 0usize;
    let mut comparisons = 0usize;
    for &id in &cfg.datasets {
        let p = prepare(id, &cfg);
        let truth = p.injection.dirty_rows();
        let n = p.test_dirty.num_rows();
        let score = |flagged: Option<Vec<usize>>| -> (Option<f64>, Option<f64>) {
            match flagged {
                None => (None, None),
                Some(rows) => {
                    let c = confusion_from_indices(&rows, &truth, n);
                    (Some(c.f1()), Some(c.mcc()))
                }
            }
        };

        let guard = Guardrail::fit(&p.train, &GuardrailConfig::default());
        let (g_f1, g_mcc) = score(Some(guard.detect(&p.test_dirty).dirty_rows()));

        let (t_f1, t_mcc) = score(run_tane(&p.train, &p.test_dirty));
        let (c_f1, c_mcc) = score(run_ctane(&p.train, &p.test_dirty));
        let (x_f1, x_mcc) = score(run_fdx(&p.train, &p.test_dirty));

        for (metric, g, t, c, x, paper) in [
            ("F1", g_f1, t_f1, c_f1, x_f1, reference::T3_GUARDRAIL_F1[id as usize - 1]),
            ("MCC", g_mcc, t_mcc, c_mcc, x_mcc, reference::T3_GUARDRAIL_MCC[id as usize - 1]),
        ] {
            println!(
                "{:<4}{:<7}{:>10}{:>9}{:>9}{:>9}   {:>12}",
                id,
                metric,
                fmt_opt(g),
                fmt_opt(t),
                fmt_opt(c),
                fmt_opt(x),
                fmt_metric(paper)
            );
            comparisons += 1;
            let gv = g.unwrap_or(f64::NEG_INFINITY);
            let gv = if gv.is_nan() { f64::NEG_INFINITY } else { gv };
            let best_other = [t, c, x]
                .into_iter()
                .flatten()
                .filter(|v| !v.is_nan())
                .fold(f64::NEG_INFINITY, f64::max);
            if gv >= best_other && gv > f64::NEG_INFINITY {
                wins += 1;
            }
        }
    }
    println!(
        "\nGuardrail ranks first in {wins}/{comparisons} comparisons   [paper: {}/24]",
        reference::T3_WINS
    );
}

fn run_tane(train: &Table, dirty: &Table) -> Option<Vec<usize>> {
    tane_discover(train, &TaneConfig::default())
        .ok()
        .map(|fds| detect_fd_violations_minority(dirty, &fds))
}

fn run_ctane(train: &Table, dirty: &Table) -> Option<Vec<usize>> {
    // CTANE's tableau holds both constant and variable CFDs; a row is
    // flagged when either fragment fires.
    let constant = ctane_discover(train, &CtaneConfig::default()).ok()?;
    let variable = ctane_discover_variable(train, &CtaneConfig::default(), 0.02).ok()?;
    let mut rows = detect_cfd_violations(dirty, &constant);
    rows.extend(detect_variable_cfd_violations(dirty, &variable));
    rows.sort_unstable();
    rows.dedup();
    Some(rows)
}

fn run_fdx(train: &Table, dirty: &Table) -> Option<Vec<usize>> {
    fdx_discover(train, &FdxConfig::default())
        .ok()
        .map(|fds| detect_fd_violations_minority(dirty, &fds))
}
