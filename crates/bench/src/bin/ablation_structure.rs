//! Extra ablation (beyond the paper): constraint-based vs score-based
//! sketch learning.
//!
//! The paper learns sketches with PC over the auxiliary distribution and
//! leaves "sophisticated search strategies" as future work. This binary
//! runs the full pipeline with each structure learner and compares program
//! coverage and error-detection F1 per dataset.

use guardrail_bench::printing::{banner, fmt_metric};
use guardrail_bench::{prepare, HarnessConfig};
use guardrail_core::{Guardrail, GuardrailConfig};
use guardrail_pgm::{Algorithm, LearnConfig};
use guardrail_stats::metrics::confusion_from_indices;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner(
        "Ablation — PC-stable vs BIC hill climbing as the sketch learner",
        &format!("rows cap {}", cfg.rows_cap),
    );

    println!("{:<4}{:>10}{:>10}{:>12}{:>12}", "ID", "cov (PC)", "cov (HC)", "F1 (PC)", "F1 (HC)");
    for &id in &cfg.datasets {
        let p = prepare(id, &cfg);
        let truth = p.injection.dirty_rows();
        let n = p.test_dirty.num_rows();
        let mut line = format!("{id:<4}");
        let mut f1s = Vec::new();
        let mut covs = Vec::new();
        for algorithm in [Algorithm::PcStable, Algorithm::HillClimbBic] {
            let config = GuardrailConfig {
                learn: LearnConfig { algorithm, ..LearnConfig::default() },
                ..GuardrailConfig::default()
            };
            let guard = Guardrail::fit(&p.train, &config);
            let cov = if guard.coverage().is_nan() { 0.0 } else { guard.coverage() };
            let flagged = guard.detect(&p.test_dirty).dirty_rows();
            let c = confusion_from_indices(&flagged, &truth, n);
            covs.push(cov);
            f1s.push(c.f1());
        }
        for c in covs {
            line.push_str(&format!("{:>10}", fmt_metric(c)));
        }
        for f in f1s {
            line.push_str(&format!("{:>12}", fmt_metric(f)));
        }
        println!("{line}");
    }
    println!(
        "\nBoth learners feed the same Alg. 2 synthesis; differences isolate the sketch stage."
    );
}
