//! Fig. 6: effectiveness of rectification on ML-integrated SQL queries.
//!
//! 4 queries × 12 datasets = 48 query executions, each compared across
//! three modes: clean data (ground truth), dirty data (vanilla), dirty data
//! with Guardrail rectification. Per §8.2 of the paper, the injected errors
//! target attributes **covered by the synthesized constraints** ("we focus
//! on errors that are caused by the integrity constraints to isolate the
//! impact of undetectable errors"). The per-query relative L1 error is
//! min-max normalized per dataset; the headline number is the average error
//! reduction (paper: 0.87 ± 0.25).

use guardrail_bench::config::HarnessConfig;
use guardrail_bench::printing::banner;
use guardrail_bench::queries::{queries_for, result_signature, signature_l1};
use guardrail_bench::reference;
use guardrail_core::{ErrorScheme, Guardrail, GuardrailConfig};
use guardrail_datasets::{inject_errors, paper_dataset, InjectConfig};
use guardrail_ml::NaiveBayes;
use guardrail_sqlexec::{Catalog, Executor};
use guardrail_stats::metrics::min_max_normalize;
use guardrail_table::SplitSpec;
use std::sync::Arc;

fn main() {
    let _trace = guardrail_bench::arm_from_env();
    let cfg = HarnessConfig::from_args();
    banner(
        "Figure 6 — rectifying data errors in ML-integrated queries",
        &format!(
            "rows cap {}; 4 queries per dataset; errors target constrained attributes (§8.2)",
            cfg.rows_cap
        ),
    );

    let mut reductions = Vec::new();
    println!("{:<10}{:>8}{:>16}{:>16}", "query", "dataset", "err (dirty)", "err (rectified)");
    for &id in &cfg.datasets {
        let dataset = paper_dataset(id, cfg.rows_cap);
        let (train, test_clean) = SplitSpec::new(0.6, cfg.seed ^ id as u64).split(&dataset.clean);
        let guard = Guardrail::fit(&train, &GuardrailConfig::default());

        // §8.2: corrupt only dependent (ON) attributes of the synthesized
        // constraints — the errors the constraints can both detect *and*
        // rectify. (Corrupting a determinant is the appendix-F hard case:
        // rectification would cascade the wrong value into the dependent.)
        let schema = test_clean.schema();
        let mut constrained: Vec<usize> = guard
            .program()
            .statements
            .iter()
            .filter_map(|s| schema.index_of(&s.on))
            .filter(|&c| c != dataset.label_col)
            .collect();
        constrained.sort_unstable();
        constrained.dedup();
        if constrained.is_empty() {
            constrained =
                (0..test_clean.num_columns()).filter(|&c| c != dataset.label_col).collect();
        }
        let mut test_dirty = test_clean.clone();
        inject_errors(
            &mut test_dirty,
            &InjectConfig {
                columns: Some(constrained),
                seed: cfg.seed.wrapping_mul(0x9E37).wrapping_add(id as u64),
                ..InjectConfig::default()
            },
        );

        // Naive Bayes reads every attribute, so constrained-attribute errors
        // actually move its predictions (the ensemble's trees shrug off most
        // single-cell corruptions, hiding the effect this figure measures).
        let model = NaiveBayes::fit(&train, dataset.label_col);
        let queries = queries_for("t", "m", &test_clean, dataset.label_col);

        let run = |data: &guardrail_table::Table, guarded: bool, sql: &str| {
            let mut catalog = Catalog::new();
            catalog.add_table("t", data.clone());
            catalog.add_model("m", Arc::new(model.clone()));
            let exec = Executor::new(&catalog);
            let exec =
                if guarded { exec.with_guardrail(&guard, ErrorScheme::Rectify) } else { exec };
            exec.run(sql).expect("query runs").table
        };

        let mut dirty_errors = Vec::new();
        let mut fixed_errors = Vec::new();
        for sql in &queries {
            let truth = result_signature(&run(&test_clean, false, sql));
            let dirty = result_signature(&run(&test_dirty, false, sql));
            let fixed = result_signature(&run(&test_dirty, true, sql));
            let rel = |obs| {
                let (d, norm) = signature_l1(obs, &truth);
                if norm == 0.0 {
                    if d == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    d / norm
                }
            };
            dirty_errors.push(rel(&dirty));
            fixed_errors.push(rel(&fixed));
        }
        // Min-max normalize per dataset over both series jointly so the two
        // modes stay comparable (the paper normalizes per query family).
        let mut all = dirty_errors.clone();
        all.extend(fixed_errors.iter().copied());
        let normalized = min_max_normalize(&all);
        let (norm_dirty, norm_fixed) = normalized.split_at(dirty_errors.len());
        for (qi, (d, f)) in norm_dirty.iter().zip(norm_fixed).enumerate() {
            println!("Q{:<9}{:>8}{:>16.3}{:>16.3}", qi + 1, id, d, f);
            if *d > 0.0 {
                // Reduction can be negative when rectification hurts.
                reductions.push((d - f) / d);
            }
        }
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    let var = reductions.iter().map(|r| (r - avg) * (r - avg)).sum::<f64>()
        / reductions.len().max(1) as f64;
    println!(
        "\naverage error reduction over {} queries: {:.2} ± {:.2}   [paper: {:.2} ± 0.25]",
        reductions.len(),
        avg,
        var.sqrt(),
        reference::F6_AVG_REDUCTION
    );
}
