//! Validates a Chrome-trace JSON file produced by `guardrail --trace-out`
//! (or assembled from a `GUARDRAIL_TRACE` JSONL stream).
//!
//! ```text
//! trace_check <trace.json> [required-span-name ...]
//! ```
//!
//! Checks, in order: the file parses with the workspace's own JSON parser
//! (the one `bench_diff` uses for `results/bench/*.jsonl`, keeping the two
//! schemas honest against each other), `traceEvents` is present, every
//! begin (`B`) event has a matching end (`E`) in LIFO order per thread, and
//! each required span name occurs at least once. Exits non-zero with a
//! description on the first failure — CI's trace smoke step gates on this.

use guardrail_obs::json::{self, Json};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((path, required)) = args.split_first() else {
        eprintln!("usage: trace_check <trace.json> [required-span-name ...]");
        return ExitCode::from(2);
    };
    match validate(path, required) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("trace_check: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn validate(path: &str, required: &[String]) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let root = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events =
        root.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents array")?;

    // Per-thread LIFO check: spans must nest, exactly as Perfetto renders
    // them.
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut spans = 0usize;
    let mut counters = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Json::as_str).ok_or(format!("event {i}: missing ph"))?;
        let name =
            ev.get("name").and_then(Json::as_str).ok_or(format!("event {i}: missing name"))?;
        let tid = ev.get("tid").and_then(Json::as_u64).ok_or(format!("event {i}: missing tid"))?;
        match ph {
            "B" => {
                stacks.entry(tid).or_default().push(name.to_string());
                *seen.entry(name.to_string()).or_default() += 1;
                spans += 1;
            }
            "E" => {
                let top = stacks.entry(tid).or_default().pop();
                if top.as_deref() != Some(name) {
                    return Err(format!(
                        "event {i}: E {name:?} on tid {tid} does not close {top:?}"
                    ));
                }
            }
            "C" => counters += 1,
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid}: {} span(s) never closed: {stack:?}", stack.len()));
        }
    }
    for want in required {
        if !seen.contains_key(want) {
            let mut have: Vec<&String> = seen.keys().collect();
            have.sort();
            return Err(format!("required span {want:?} absent (have: {have:?})"));
        }
    }
    Ok(format!(
        "ok: {spans} span(s), {counters} counter sample(s), {} distinct name(s), {} thread(s)",
        seen.len(),
        stacks.len()
    ))
}
