//! §8.3's OptSMT ablation: the sketch-free synthesizer's blow-up.
//!
//! The paper's νZ encoding produced tens of millions of clauses and timed
//! out after 24 h even on the 4-attribute dataset. Our enumerative baseline
//! reproduces the cost profile: candidate sketches × branches × rows of
//! constraints, with a budget standing in for the wall clock. The binary
//! also prints the analytic candidate-space sizes for every dataset.

use guardrail_bench::printing::{banner, fmt_count};
use guardrail_bench::{prepare, HarnessConfig};
use guardrail_governor::Budget;
use guardrail_synth::optsmt::candidate_space;
use guardrail_synth::{optsmt_synthesize, OptSmtConfig, OptSmtOutcome};

fn main() {
    let cfg = HarnessConfig::from_args();
    banner(
        "§8.3 — OptSMT-style sketch-free baseline",
        &format!("rows cap {}; constraint budget stands in for the 24 h timeout", cfg.rows_cap),
    );

    println!("{:<4}{:>8}{:>18}{:>20}", "ID", "#Attr", "cand. sketches", "outcome");
    for &id in &cfg.datasets {
        let p = prepare(id, &cfg);
        let attrs = p.dataset.spec.attrs;
        let space = candidate_space(attrs, 3);
        let outcome = optsmt_synthesize(
            &p.train,
            &OptSmtConfig::default(),
            &Budget::with_work_cap(20_000_000),
        );
        let summary = match outcome {
            OptSmtOutcome::Solved { coverage, constraints, candidates, .. } => format!(
                "solved: cov {coverage:.2}, {} constraints, {candidates} candidates",
                fmt_count(constraints as f64)
            ),
            OptSmtOutcome::Timeout { constraints, candidates, .. } => format!(
                "TIMEOUT after {} constraints ({candidates} candidates)",
                fmt_count(constraints as f64)
            ),
        };
        println!("{:<4}{:>8}{:>18}{:>20}", id, attrs, fmt_count(space as f64), summary);
    }
    println!(
        "\npaper: the OptSMT encoding yields tens of millions of clauses and finds no \
         satisfiable solution within 24 h even on dataset #6 (4 attributes); the MEC \
         sketch restriction (Table 7) is what makes synthesis tractable."
    );
}
