//! Table 5: mis-prediction detection.
//!
//! `P = |detected ∩ mispredicted| / |detected|` — how many detected data
//! errors are also the root cause of a mis-prediction.
//! `R = |missed ∩ mispredicted| / |missed|` — the paper's striking finding
//! is that errors Guardrail misses (almost) never cause mis-predictions.

use guardrail_bench::printing::{banner, fmt_metric};
use guardrail_bench::reference;
use guardrail_bench::{prepare, HarnessConfig};
use guardrail_core::{Guardrail, GuardrailConfig};
use std::collections::HashSet;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner(
        "Table 5 — mis-prediction detection",
        &format!("rows cap {}; P over detected errors, R over missed errors", cfg.rows_cap),
    );

    println!("{:<4}{:>12}{:>8}{:>8}   {:>10}", "ID", "# Mis-pred", "P", "R", "paper P");
    for &id in &cfg.datasets {
        let p = prepare(id, &cfg);
        let guard = Guardrail::fit(&p.train, &GuardrailConfig::default());

        let detected: HashSet<usize> =
            guard.detect(&p.test_dirty).dirty_rows().into_iter().collect();
        let injected: HashSet<usize> = p.injection.dirty_rows().into_iter().collect();
        let mispred: HashSet<usize> = p.mispredicted_rows().into_iter().collect();

        let detected_errors: HashSet<usize> = detected.intersection(&injected).copied().collect();
        let missed_errors: HashSet<usize> = injected.difference(&detected).copied().collect();

        let precision = if detected_errors.is_empty() {
            f64::NAN
        } else {
            detected_errors.intersection(&mispred).count() as f64 / detected_errors.len() as f64
        };
        let recall_of_missed = if missed_errors.is_empty() {
            f64::NAN // the paper's "-": no missed errors at all
        } else {
            missed_errors.intersection(&mispred).count() as f64 / missed_errors.len() as f64
        };
        println!(
            "{:<4}{:>12}{:>8}{:>8}   {:>10}",
            id,
            mispred.len(),
            fmt_metric(precision),
            if recall_of_missed.is_nan() { "-".into() } else { fmt_metric(recall_of_missed) },
            fmt_metric(reference::T5_P[id as usize - 1]),
        );
    }
    println!("\npaper: missed errors led to zero mis-predictions on every dataset (R ≈ 0)");
}
