//! Table 8: ablation of the auxiliary sampler (Def. 4.5).
//!
//! Synthesis runs twice per dataset — learning structure on the auxiliary
//! binary view vs directly on the raw encoded data — and reports the
//! coverage of the synthesized program. The shape to reproduce: the
//! auxiliary sampler never hurts, and on the small, high-cardinality
//! datasets (#4–#6) the identity sampler collapses to zero coverage.

use guardrail_bench::printing::{banner, fmt_metric};
use guardrail_bench::reference;
use guardrail_bench::{prepare, HarnessConfig};
use guardrail_core::{Guardrail, GuardrailConfig};
use guardrail_pgm::{LearnConfig, Sampler};

fn main() {
    let cfg = HarnessConfig::from_args();
    banner(
        "Table 8 — effectiveness of the auxiliary sampler (normalized coverage)",
        &format!("rows cap {}", cfg.rows_cap),
    );

    println!(
        "{:<4}{:>10}{:>10}   {:>12}{:>12}",
        "ID", "w/o aux", "w/ aux", "paper w/o", "paper w/"
    );
    let mut better_or_equal = 0usize;
    for &id in &cfg.datasets {
        let p = prepare(id, &cfg);
        let coverage = |sampler: Sampler| {
            let config = GuardrailConfig {
                learn: LearnConfig { sampler, ..LearnConfig::default() },
                ..GuardrailConfig::default()
            };
            let guard = Guardrail::fit(&p.train, &config);
            if guard.coverage().is_nan() {
                0.0
            } else {
                guard.coverage()
            }
        };
        let without = coverage(Sampler::Identity);
        let with = coverage(Sampler::Auxiliary);
        if with >= without - 1e-9 {
            better_or_equal += 1;
        }
        println!(
            "{:<4}{:>10}{:>10}   {:>12}{:>12}",
            id,
            fmt_metric(without),
            fmt_metric(with),
            fmt_metric(reference::T8_WITHOUT_AUX[id as usize - 1]),
            fmt_metric(reference::T8_WITH_AUX[id as usize - 1]),
        );
    }
    println!(
        "\nauxiliary sampler ≥ identity sampler on {better_or_equal}/{} datasets \
         [paper: better on all, p = 0.037]",
        cfg.datasets.len()
    );
}
