//! The paper's reported numbers, for side-by-side printing.
//!
//! Only *shapes* are expected to reproduce (who wins, rough magnitudes);
//! the substrate here is a synthetic SEM, not the authors' datasets.

/// Table 3: Guardrail's F1 per dataset (ids 1–12).
pub const T3_GUARDRAIL_F1: [f64; 12] =
    [0.356, 0.411, 0.333, 0.061, 0.065, 0.723, 0.065, 0.065, 0.378, 0.051, 0.139, 0.139];

/// Table 3: Guardrail's MCC per dataset.
pub const T3_GUARDRAIL_MCC: [f64; 12] =
    [0.389, 0.410, 0.355, -0.023, 0.161, 0.684, 0.170, 0.182, 0.477, 0.055, 0.121, 0.130];

/// Table 3: how many of the 24 comparisons Guardrail wins in the paper.
pub const T3_WINS: usize = 17;

/// Table 1: injected error counts per dataset.
pub const T1_ERRORS: [usize; 12] = [3377, 1419, 35, 19, 6, 48, 124, 521, 444, 1404, 808, 2591];

/// Table 1: mis-prediction counts per dataset.
pub const T1_MISPRED: [usize; 12] = [426, 336, 2, 5, 5, 14, 14, 321, 25, 33, 41, 383];

/// Table 1: Spearman ρ between errors and mis-predictions.
pub const T1_SPEARMAN: f64 = 0.947;

/// Table 4: offline synthesis time in seconds per dataset.
pub const T4_TIME_S: [f64; 12] =
    [665.0, 607.0, 1205.0, 690.0, 605.0, 604.0, 604.0, 614.0, 1376.0, 820.0, 1227.0, 1301.0];

/// Table 5: P = detected mis-preds / detected errors, per dataset.
pub const T5_P: [f64; 12] =
    [0.13, 0.24, 0.06, 0.26, 0.83, 0.29, 0.11, 0.62, 0.06, 0.02, 0.05, 0.15];

/// Table 6: Guardrail check time (s) per dataset.
pub const T6_GUARDRAIL_S: [f64; 12] =
    [1.367, 0.265, 0.007, 0.008, 0.014, 0.013, 0.045, 0.667, 0.149, 0.263, 0.078, 1.074];

/// Table 6: model inference time (s) per dataset.
pub const T6_INFERENCE_S: [f64; 12] =
    [1.754, 0.226, 0.091, 0.303, 0.353, 0.018, 0.173, 0.320, 0.306, 0.670, 0.083, 0.995];

/// Table 7: MEC sizes per dataset.
pub const T7_DAGS_WITH_MEC: [usize; 12] = [216, 1, 5, 8, 5, 8, 8, 120, 18, 60, 168, 180];

/// Table 7: enumeration times (s) per dataset.
pub const T7_TIME_S: [f64; 12] = [67.0, 4.0, 4.0, 4.0, 5.0, 5.0, 5.0, 13.0, 6.0, 20.0, 7.0, 12.0];

/// Table 7: orientation-space sizes without the MEC restriction.
pub const T7_DAGS_WITHOUT_MEC: [f64; 12] = [
    2.46e5, 1.02e3, 2.20e13, 1.11e6, 5.11e3, 7.50e1, 3.76e9, 4.41e2, 1.05e7, 1.11e6, 3.33e10,
    2.36e6,
];

/// Table 8: normalized coverage without the auxiliary sampler.
pub const T8_WITHOUT_AUX: [f64; 12] =
    [0.393, 0.623, 0.179, 0.000, 0.000, 0.000, 0.400, 0.054, 0.287, 0.145, 0.233, 0.227];

/// Table 8: normalized coverage with the auxiliary sampler.
pub const T8_WITH_AUX: [f64; 12] =
    [0.395, 0.741, 0.442, 0.126, 0.109, 0.394, 0.409, 0.062, 0.305, 0.149, 0.242, 0.250];

/// Fig. 6: the paper's average relative-error reduction across 48 queries.
pub const F6_AVG_REDUCTION: f64 = 0.87;

/// Fig. 7: the ε range the paper recommends.
pub const F7_RECOMMENDED_EPS: (f64, f64) = (0.01, 0.05);
