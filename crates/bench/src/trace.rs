//! Opt-in tracing for the bench binaries.
//!
//! Setting `GUARDRAIL_TRACE=/path/to/events.jsonl` before any bench binary
//! streams the run's span/counter events to that file in the same JSONL
//! schema the CLI's `--trace-out` recorder and `bench_diff`'s result records
//! share — one parser ([`guardrail_obs::json`]) reads both, so traces can
//! sit next to `results/bench/*.jsonl` and be post-processed by the same
//! tooling.

use guardrail_obs as obs;
use std::sync::Arc;

/// Environment variable naming the JSONL file to stream trace events to.
pub const TRACE_ENV: &str = "GUARDRAIL_TRACE";

/// Arms the global recorder from [`TRACE_ENV`], if set. Returns the
/// recorder so callers can [`flush`](TraceGuard::flush) it (dropping the
/// guard flushes too); `None` when tracing was not requested or the file
/// could not be opened (reported to stderr, never fatal — observability
/// must not fail the benchmark).
pub fn arm_from_env() -> Option<TraceGuard> {
    let path = std::env::var(TRACE_ENV).ok().filter(|p| !p.is_empty())?;
    match obs::JsonlRecorder::create(&path) {
        Ok(recorder) => {
            let recorder = Arc::new(recorder);
            obs::install(recorder.clone());
            eprintln!("tracing to {path}");
            Some(TraceGuard { recorder })
        }
        Err(e) => {
            eprintln!("cannot open {TRACE_ENV}={path}: {e}; tracing disabled");
            None
        }
    }
}

/// Keeps the armed [`obs::JsonlRecorder`] alive for the benchmark's
/// duration; dropping it disarms the global recorder and flushes the file.
pub struct TraceGuard {
    recorder: Arc<obs::JsonlRecorder>,
}

impl TraceGuard {
    /// Flushes buffered events to disk.
    pub fn flush(&self) {
        self.recorder.flush();
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        obs::uninstall();
        self.recorder.flush();
    }
}
