//! Result-table formatting helpers.

/// Formats a metric, rendering NaN the way the paper's tables do.
pub fn fmt_metric(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v:.3}")
    }
}

/// Formats an optional metric; `None` is the paper's "–" (baseline failed).
pub fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => fmt_metric(v),
        None => "-".to_string(),
    }
}

/// Formats a large count in scientific notation like the paper's Table 7.
pub fn fmt_count(v: f64) -> String {
    if v < 1e4 {
        format!("{v:.0}")
    } else {
        format!("{v:.2e}")
    }
}

/// Prints a banner for an experiment binary.
pub fn banner(title: &str, detail: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{detail}");
    println!("{}", "=".repeat(78));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_metric(0.3561), "0.356");
        assert_eq!(fmt_metric(f64::NAN), "NaN");
        assert_eq!(fmt_opt(None), "-");
        assert_eq!(fmt_opt(Some(1.0)), "1.000");
        assert_eq!(fmt_count(216.0), "216");
        assert_eq!(fmt_count(2.46e5), "2.46e5");
    }
}
