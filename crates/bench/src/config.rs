//! CLI configuration shared by every experiment binary.

/// Harness options, parsed from the binary's command line.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Maximum rows materialized per dataset (`usize::MAX` with `--full`).
    pub rows_cap: usize,
    /// Dataset ids to run (default: all 12).
    pub datasets: Vec<u8>,
    /// Master seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self { rows_cap: 6000, datasets: (1..=12).collect(), seed: 0xE0 }
    }
}

impl HarnessConfig {
    /// Parses `--full`, `--rows-cap N`, `--datasets 1,2,5`, `--seed N`.
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => cfg.rows_cap = usize::MAX,
                "--rows-cap" => {
                    cfg.rows_cap = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--rows-cap needs a number");
                }
                "--datasets" => {
                    cfg.datasets = args
                        .next()
                        .expect("--datasets needs a list")
                        .split(',')
                        .map(|s| s.trim().parse().expect("dataset ids are 1-12"))
                        .collect();
                }
                "--seed" => {
                    cfg.seed =
                        args.next().and_then(|v| v.parse().ok()).expect("--seed needs a number");
                }
                other => panic!("unknown argument {other:?} (try --full / --rows-cap N / --datasets 1,2 / --seed N)"),
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = HarnessConfig::default();
        assert_eq!(c.datasets.len(), 12);
        assert_eq!(c.rows_cap, 6000);
    }
}
