//! Shared harness for the paper-reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see `DESIGN.md`'s experiment index and `EXPERIMENTS.md` for
//! recorded results). This library holds what they share: dataset
//! preparation (materialize → split → inject), the per-dataset ML model,
//! result-table formatting, and the paper's reference numbers for
//! side-by-side printing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod prep;
pub mod printing;
pub mod queries;
pub mod reference;
pub mod trace;

pub use config::HarnessConfig;
pub use prep::{prepare, PreparedDataset};
pub use printing::{fmt_metric, fmt_opt};
pub use trace::{arm_from_env, TraceGuard};
