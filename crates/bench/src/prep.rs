//! Dataset preparation shared by the experiment binaries.

use crate::config::HarnessConfig;
use guardrail_datasets::{
    inject_errors, paper_dataset, GeneratedDataset, InjectConfig, InjectionReport,
};
use guardrail_ml::Ensemble;
use guardrail_table::{SplitSpec, Table};

/// One dataset, fully staged for an experiment: discovery split, clean and
/// error-injected evaluation splits, their ground truth, and a fitted model.
pub struct PreparedDataset {
    /// The generated dataset (clean table + ground-truth SEM).
    pub dataset: GeneratedDataset,
    /// Clean discovery/training split (60%).
    pub train: Table,
    /// Clean evaluation split (40%).
    pub test_clean: Table,
    /// Evaluation split with injected errors.
    pub test_dirty: Table,
    /// Ground truth of the injection.
    pub injection: InjectionReport,
    /// Ensemble fitted on the training split to predict the label column.
    pub model: Ensemble,
}

impl PreparedDataset {
    /// Indices of rows in the dirty split whose model prediction differs
    /// from the prediction on the corresponding clean row — the paper's
    /// "mis-predictions" (Tables 1 and 5).
    pub fn mispredicted_rows(&self) -> Vec<usize> {
        use guardrail_ml::Classifier;
        let clean_preds = self.model.predict_table(&self.test_clean);
        let dirty_preds = self.model.predict_table(&self.test_dirty);
        clean_preds
            .iter()
            .zip(&dirty_preds)
            .enumerate()
            .filter(|(_, (c, d))| c != d)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Stages dataset `id` under `cfg`.
///
/// Splits 60/40, injects errors into the dirty split at the paper's rate
/// (1%, small-dataset cap) across every non-label column — corrupting the
/// label itself would not perturb model *inputs*, which is what the ML
/// experiments measure.
pub fn prepare(id: u8, cfg: &HarnessConfig) -> PreparedDataset {
    let dataset = paper_dataset(id, cfg.rows_cap);
    let (train, test_clean) = SplitSpec::new(0.6, cfg.seed ^ id as u64).split(&dataset.clean);
    let mut test_dirty = test_clean.clone();
    let columns: Vec<usize> =
        (0..test_clean.num_columns()).filter(|&c| c != dataset.label_col).collect();
    let injection = inject_errors(
        &mut test_dirty,
        &InjectConfig {
            columns: Some(columns),
            seed: cfg.seed.wrapping_mul(0x9E37).wrapping_add(id as u64),
            ..InjectConfig::default()
        },
    );
    let model = Ensemble::fit(&train, dataset.label_col);
    PreparedDataset { dataset, train, test_clean, test_dirty, injection, model }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preparation_is_consistent() {
        let cfg = HarnessConfig { rows_cap: 600, ..Default::default() };
        let p = prepare(2, &cfg);
        assert_eq!(p.train.num_rows() + p.test_clean.num_rows(), 600);
        assert_eq!(p.test_clean.num_rows(), p.test_dirty.num_rows());
        assert!(!p.injection.errors.is_empty());
        // label column never corrupted
        assert!(p.injection.errors.iter().all(|e| e.col != p.dataset.label_col));
    }

    #[test]
    fn mispredictions_only_on_dirty_rows() {
        let cfg = HarnessConfig { rows_cap: 1500, ..Default::default() };
        let p = prepare(2, &cfg);
        let mis = p.mispredicted_rows();
        for &row in &mis {
            assert!(p.injection.is_dirty(row), "clean row {row} mispredicted differently");
        }
    }
}
