//! The ML-integrated query workload of Fig. 6.
//!
//! The paper's authors hand-wrote 4 queries per dataset (48 total). We
//! instantiate 4 templates per dataset from its schema, covering the same
//! shapes: a global CASE-WHEN rate, a grouped count of predictions, a
//! grouped conditional rate, and a filtered per-prediction aggregate.

use guardrail_table::{Table, Value};
use std::collections::BTreeMap;

/// Builds the four ML-integrated queries for a dataset. `model` is the
/// catalog name of the model, `table` the catalog name of the relation.
pub fn queries_for(table_name: &str, model: &str, table: &Table, label_col: usize) -> Vec<String> {
    // Pick a label value to score against and low-cardinality attributes to
    // group/filter by.
    let label_value = table
        .column(label_col)
        .expect("label col")
        .mode_code()
        .map(|c| table.column(label_col).unwrap().dictionary().decode(c))
        .unwrap_or(Value::Int(0));
    let label_lit = sql_literal(&label_value);

    let mut group_col = None;
    let mut filter = None;
    for (i, col) in table.columns().iter().enumerate() {
        if i == label_col {
            continue;
        }
        let card = col.distinct_count();
        if (2..=8).contains(&card) {
            let name = table.schema().field(i).unwrap().name().to_string();
            if group_col.is_none() {
                group_col = Some(name);
            } else if filter.is_none() {
                let v = col.dictionary().decode(col.mode_code().expect("non-empty"));
                filter = Some((name, sql_literal(&v)));
            }
        }
    }
    let group_col = group_col.unwrap_or_else(|| {
        // Fallback: any non-label column.
        let i = (0..table.num_columns()).find(|&c| c != label_col).expect("≥2 columns");
        table.schema().field(i).unwrap().name().to_string()
    });
    let (filter_col, filter_lit) =
        filter.unwrap_or_else(|| (group_col.clone(), "NULL".to_string()));

    let rate = format!("AVG(CASE WHEN PREDICT({model}) = {label_lit} THEN 1 ELSE 0 END)");
    let mut queries = vec![
        // Q1: global predicted rate (the Fig. 1 query shape).
        format!("SELECT {rate} AS rate FROM {table_name}"),
        // Q2: prediction histogram.
        format!(
            "SELECT PREDICT({model}) AS pred, COUNT(*) AS n FROM {table_name} \
             GROUP BY pred ORDER BY pred"
        ),
        // Q3: grouped predicted rate.
        format!(
            "SELECT {g}, {rate} AS rate FROM {table_name} GROUP BY {g} ORDER BY {g}",
            g = quote_ident(&group_col)
        ),
    ];
    // Q4: filtered histogram (skipped filter degenerates to an unfiltered
    // variant rather than producing an always-false predicate).
    if filter_lit != "NULL" {
        queries.push(format!(
            "SELECT PREDICT({model}) AS pred, COUNT(*) AS n FROM {table_name} \
             WHERE {f} = {lit} GROUP BY pred ORDER BY pred",
            f = quote_ident(&filter_col),
            lit = filter_lit
        ));
    } else {
        queries.push(format!(
            "SELECT PREDICT({model}) AS pred, COUNT(*) AS n FROM {table_name} \
             GROUP BY pred ORDER BY pred"
        ));
    }
    queries
}

fn quote_ident(name: &str) -> String {
    if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && name.chars().next().map(|c| c.is_ascii_alphabetic()).unwrap_or(false)
    {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}

fn sql_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Null => "NULL".to_string(),
        other => other.to_string(),
    }
}

/// Flattens a query result into `group-key → numeric vector` so runs over
/// different data (clean / dirty / rectified) can be compared even when
/// their group sets differ.
pub fn result_signature(table: &Table) -> BTreeMap<String, Vec<f64>> {
    let mut out = BTreeMap::new();
    for row in 0..table.num_rows() {
        let mut key = String::new();
        let mut nums = Vec::new();
        for col in 0..table.num_columns() {
            let v = table.get(row, col).unwrap_or(Value::Null);
            match v.as_f64() {
                Some(f) if !matches!(v, Value::Str(_)) => nums.push(f),
                _ => {
                    key.push_str(&v.to_string());
                    key.push('\u{1f}');
                }
            }
        }
        out.insert(key, nums);
    }
    out
}

/// L1 distance between two signatures (missing groups read as zeros), and
/// the L1 norm of the reference — the ingredients of Fig. 6's relative
/// error.
pub fn signature_l1(
    observed: &BTreeMap<String, Vec<f64>>,
    reference: &BTreeMap<String, Vec<f64>>,
) -> (f64, f64) {
    let mut distance = 0.0;
    let mut norm = 0.0;
    let keys: std::collections::BTreeSet<&String> =
        observed.keys().chain(reference.keys()).collect();
    for key in keys {
        let zero = Vec::new();
        let o = observed.get(key).unwrap_or(&zero);
        let r = reference.get(key).unwrap_or(&zero);
        let len = o.len().max(r.len());
        for i in 0..len {
            let ov = o.get(i).copied().unwrap_or(0.0);
            let rv = r.get(i).copied().unwrap_or(0.0);
            distance += (ov - rv).abs();
            norm += rv.abs();
        }
    }
    (distance, norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_four_queries() {
        let t = Table::from_csv_str("a,b,label\nx,1,yes\ny,2,no\nx,1,yes\n").unwrap();
        let qs = queries_for("t", "m", &t, 2);
        assert_eq!(qs.len(), 4);
        assert!(qs.iter().all(|q| q.contains("PREDICT(m)")));
        assert!(qs[0].contains("'yes'"), "{}", qs[0]);
    }

    #[test]
    fn signatures_align_groups() {
        let a = Table::from_csv_str("g,n\nx,1\ny,2\n").unwrap();
        let b = Table::from_csv_str("g,n\nx,1\nz,5\n").unwrap();
        let (d, norm) = signature_l1(&result_signature(&a), &result_signature(&b));
        // y: |2-0| + z: |0-5| = 7; reference norm = 1 + 5.
        assert_eq!(d, 7.0);
        assert_eq!(norm, 6.0);
        let (zero, _) = signature_l1(&result_signature(&a), &result_signature(&a));
        assert_eq!(zero, 0.0);
    }
}
